"""Error metrics: per-group relative error and summaries.

The paper's metric (Section 6): for ground truth ``x`` and approximate
answer ``x_hat``, the per-group relative error is ``|x_hat - x| / x``;
experiments report the maximum and average over all answers of a query
(all groups x all aggregate output columns), and Figure 6 reports
percentiles of the per-group error distribution.

A group present in the ground truth but missing from the sample's answer
is counted as 100% error (the paper: Uniform "has largest error of
100%, as some groups are absent in Uniform sample").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..engine.schema import DType
from ..engine.table import Table

__all__ = [
    "split_key_value_columns",
    "result_cells",
    "GroupErrors",
    "compare_results",
    "summarize_many",
]


def split_key_value_columns(table: Table):
    """Heuristic: float64 columns are aggregate outputs, the rest keys.

    Matches the engine's convention — aggregates are always float64,
    group keys keep their source type (or string in CUBE output).
    """
    keys, values = [], []
    for spec in table.schema:
        if spec.dtype is DType.FLOAT64:
            values.append(spec.name)
        else:
            keys.append(spec.name)
    return keys, values


def result_cells(
    table: Table,
    key_columns: Optional[Sequence[str]] = None,
    value_columns: Optional[Sequence[str]] = None,
) -> Dict[tuple, Dict[str, float]]:
    """``{group_key_tuple: {output_column: value}}`` for a query result."""
    if key_columns is None or value_columns is None:
        inferred_keys, inferred_values = split_key_value_columns(table)
        key_columns = inferred_keys if key_columns is None else key_columns
        value_columns = (
            inferred_values if value_columns is None else value_columns
        )
    key_arrays = [table.column(k).decode() for k in key_columns]
    value_arrays = {v: table.column(v).decode() for v in value_columns}
    out: Dict[tuple, Dict[str, float]] = {}
    for i in range(table.num_rows):
        key = tuple(a[i] for a in key_arrays)
        out[key] = {v: float(arr[i]) for v, arr in value_arrays.items()}
    return out


@dataclass
class GroupErrors:
    """Per-cell relative errors of one approximate answer."""

    errors: Dict[Tuple[tuple, str], float] = field(default_factory=dict)
    missing_groups: int = 0
    extra_groups: int = 0
    skipped_zero_truth: int = 0

    @property
    def values(self) -> np.ndarray:
        return np.asarray(list(self.errors.values()), dtype=np.float64)

    @property
    def num_cells(self) -> int:
        return len(self.errors)

    def max_error(self) -> float:
        vals = self.values
        return float(vals.max()) if len(vals) else float("nan")

    def mean_error(self) -> float:
        vals = self.values
        return float(vals.mean()) if len(vals) else float("nan")

    def median_error(self) -> float:
        vals = self.values
        return float(np.median(vals)) if len(vals) else float("nan")

    def percentile(self, rank: float) -> float:
        """Error at percentile ``rank`` in [0, 1] (paper Figure 6)."""
        vals = self.values
        if not len(vals):
            return float("nan")
        return float(np.quantile(vals, rank))

    def percentile_profile(
        self, ranks: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    ) -> Dict[str, float]:
        profile = {f"p{int(r * 100)}": self.percentile(r) for r in ranks}
        profile["max"] = self.max_error()
        return profile


def compare_results(
    truth: Table,
    estimate: Table,
    key_columns: Optional[Sequence[str]] = None,
    value_columns: Optional[Sequence[str]] = None,
    missing_error: float = 1.0,
    zero_truth_epsilon: float = 1e-12,
) -> GroupErrors:
    """Per-cell relative errors of ``estimate`` against ``truth``.

    Cells whose true value is (numerically) zero cannot yield a relative
    error; they are skipped and counted in ``skipped_zero_truth``
    (unless the estimate is also zero, which scores 0 error).
    """
    truth_cells = result_cells(truth, key_columns, value_columns)
    estimate_cells = result_cells(estimate, key_columns, value_columns)
    result = GroupErrors()
    for key, true_values in truth_cells.items():
        est_values = estimate_cells.get(key)
        if est_values is None:
            result.missing_groups += 1
            for column in true_values:
                result.errors[(key, column)] = missing_error
            continue
        for column, x in true_values.items():
            x_hat = est_values.get(column, float("nan"))
            if not np.isfinite(x):
                continue
            if abs(x) <= zero_truth_epsilon:
                if np.isfinite(x_hat) and abs(x_hat) <= zero_truth_epsilon:
                    result.errors[(key, column)] = 0.0
                else:
                    result.skipped_zero_truth += 1
                continue
            if not np.isfinite(x_hat):
                result.errors[(key, column)] = missing_error
                continue
            result.errors[(key, column)] = abs(x_hat - x) / abs(x)
    result.extra_groups = len(
        set(estimate_cells) - set(truth_cells)
    )
    return result


def summarize_many(runs: Sequence[GroupErrors]) -> Dict[str, float]:
    """Average the summary statistics of repeated runs (paper: 5 reps)."""
    if not runs:
        return {}
    return {
        "mean_error": float(np.mean([r.mean_error() for r in runs])),
        "max_error": float(np.mean([r.max_error() for r in runs])),
        "median_error": float(np.mean([r.median_error() for r in runs])),
        "p90_error": float(np.mean([r.percentile(0.9) for r in runs])),
        "missing_groups": float(np.mean([r.missing_groups for r in runs])),
    }
