"""Direct per-group estimation with error bars.

:func:`sample.answer` runs arbitrary SQL over a sample; this module is
the lower-level estimation API for the common case — per-group
AVG/SUM/COUNT with a runtime predicate — and additionally reports the
*estimated* standard error and CV of every group estimate, computed from
within-stratum sample variances using the stratified-sampling identity
the paper builds on:

``VAR[y_a] = (1/n_a^2) * sum_{c in C(a)} n_c^2 (1 - s_c/n_c) sigma_c^2 / s_c``

(with the finite-population correction; ``sigma_c`` estimated from the
sample). This is what a downstream system would surface as a confidence
interval next to each approximate answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.sample import STRATUM_COLUMN, WEIGHT_COLUMN, StratifiedSample
from ..engine.expr import Expr, evaluate_predicate
from ..engine.groupby import compute_group_keys
from ..engine.sql.parser import parse_expression

__all__ = ["GroupEstimate", "estimate_groups"]


@dataclass(frozen=True)
class GroupEstimate:
    """One group's estimate with uncertainty."""

    key: tuple
    value: float
    std_error: float
    cv: float
    supporting_rows: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        return (self.value - z * self.std_error, self.value + z * self.std_error)


def estimate_groups(
    sample: StratifiedSample,
    group_by: Sequence[str],
    column: Optional[str],
    func: str = "AVG",
    predicate: Optional[str | Expr] = None,
) -> Dict[tuple, GroupEstimate]:
    """Estimate ``func(column)`` per group of ``group_by`` on the sample.

    ``func`` is one of AVG, SUM, COUNT. ``predicate`` (SQL text or a
    parsed expression) filters sample rows before estimation, exactly
    like a runtime WHERE clause.
    """
    func = func.upper()
    if func not in ("AVG", "SUM", "COUNT"):
        raise ValueError("estimate_groups supports AVG, SUM and COUNT")
    if func != "COUNT" and column is None:
        raise ValueError(f"{func} requires a column")

    table = sample.table
    if predicate is not None:
        if isinstance(predicate, str):
            predicate = parse_expression(predicate)
        table = table.filter(evaluate_predicate(predicate, table))

    weights = table.column(WEIGHT_COLUMN).values_numeric().astype(np.float64)
    strata = table.column(STRATUM_COLUMN).values_numeric().astype(np.int64)
    values = (
        np.ones(table.num_rows)
        if column is None
        else table.column(column).values_numeric().astype(np.float64)
    )

    keys = compute_group_keys(table, tuple(group_by))
    key_tuples = keys.key_tuples(table)
    populations = sample.allocation.populations.astype(np.float64)
    draw_sizes = sample.allocation.sizes.astype(np.float64)

    out: Dict[tuple, GroupEstimate] = {}
    for g in range(keys.num_groups):
        mask = keys.gids == g
        est, se = _group_estimate(
            func,
            values[mask],
            weights[mask],
            strata[mask],
            populations,
            draw_sizes,
        )
        cv = se / abs(est) if est not in (0.0,) and np.isfinite(est) else float("inf")
        out[key_tuples[g]] = GroupEstimate(
            key=key_tuples[g],
            value=est,
            std_error=se,
            cv=cv,
            supporting_rows=int(mask.sum()),
        )
    return out


def _group_estimate(func, values, weights, strata, populations, draw_sizes):
    sum_w = float(weights.sum())
    sum_wx = float((weights * values).sum())
    if func == "COUNT":
        estimate = sum_w
    elif func == "SUM":
        estimate = sum_wx
    else:  # AVG
        estimate = sum_wx / sum_w if sum_w > 0 else float("nan")

    variance = _estimate_variance(
        func, values, strata, populations, draw_sizes, estimate, sum_w
    )
    return estimate, float(np.sqrt(max(variance, 0.0)))


def _estimate_variance(
    func, values, strata, populations, draw_sizes, estimate, sum_w
):
    """Stratified variance with finite-population correction.

    For AVG the group mean is ``sum_c (n'_c / n') ybar_c`` where ``n'_c``
    is the (estimated) number of matching rows of stratum c; we use the
    standard stratified estimator over the contributing strata. For
    SUM/COUNT the HT total's variance sums per-stratum total variances.
    """
    if len(values) == 0:
        return float("inf")
    contributing = np.unique(strata)
    var_total = 0.0
    weighted_pop = 0.0
    for c in contributing:
        mask = strata == c
        s_c = float(mask.sum())
        n_c = populations[c] if c < len(populations) else s_c
        drawn_c = draw_sizes[c] if c < len(draw_sizes) else s_c
        if drawn_c <= 0:
            continue
        # Matching rows in the stratum, estimated by scale-up.
        n_match = n_c * s_c / drawn_c
        sample_var = float(values[mask].var()) if s_c > 1 else 0.0
        fpc = max(1.0 - drawn_c / n_c, 0.0) if n_c > 0 else 0.0
        if func == "COUNT":
            # Variance of the HT count: binomial-ish over the stratum.
            p_hat = s_c / drawn_c
            var_total += n_c**2 * fpc * p_hat * (1 - min(p_hat, 1.0)) / drawn_c
        else:
            var_mean_c = fpc * sample_var / s_c
            if func == "SUM":
                var_total += n_match**2 * var_mean_c
            else:  # AVG: weight by share of matching population
                var_total += n_match**2 * var_mean_c
                weighted_pop += n_match
    if func == "AVG":
        if weighted_pop <= 0:
            return float("inf")
        return var_total / weighted_pop**2
    return var_total
