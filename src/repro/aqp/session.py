"""AQP session: sample-aware query routing over the planner pipeline.

An :class:`AQPSession` owns base tables and a catalog of materialized
:class:`~repro.core.sample.StratifiedSample` objects, and answers exact
SQL strings approximately by:

1. **routing** the query to the best stored sample — a sample qualifies
   when its stratification attributes cover the query's group-by
   attributes (paper Section 6: any coarsening of the finest
   stratification is answerable); among qualifying samples the router
   picks the one with the lowest *predicted* estimate CV for the
   columns the query actually aggregates, computed from each sample's
   persisted per-column moments and the CV math in
   :mod:`repro.aqp.planning`. When the caller states a ``max_cv``
   constraint the routing is **contract-aware**: a sample whose
   worst per-group predicted CV on the queried columns satisfies the
   constraint is preferred over the globally-lowest-CV sample, so a
   satisfiable request is served approximately instead of falling back
   to exact execution;
2. **rewriting** the plan: base-table scans are redirected to the
   sample's rows and every aggregate becomes its weighted
   Horvitz-Thompson estimator (:func:`repro.engine.sql.planner.apply_weighting`);
3. **memoizing** compiled plans keyed by normalized query *shape*
   (literals parameterized out), so repeated query shapes skip parsing
   analysis, routing, lowering, and rewriting, and exact repeats skip
   compilation too.

Queries no sample can serve (no grouping coverage, no aggregation to
reweight, or joins of two samples) fall back to exact execution over the
base tables — same pipeline, no weighting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..core.sample import STRATUM_COLUMN, WEIGHT_COLUMN, StratifiedSample
from ..engine.expr import ColumnRef, collect_agg_calls, collect_column_refs
from ..engine.sql.ast import (
    JoinClause,
    NamedTable,
    SelectQuery,
    SubqueryTable,
)
from ..engine.sql.errors import QueryExecutionError
from ..engine.sql.operators import PhysicalPlan, compile_plan
from ..engine.sql.parser import parse_query
from ..engine.sql.planner import (
    apply_weighting,
    bind_plan,
    extract_time_bounds,
    lower_query,
    parameterize_query,
    plan_column_refs,
    rename_tables,
)
from ..engine.groupcache import default_group_code_cache
from ..engine.table import Table
from ..obs import current_trace_id, default_registry, default_tracer
from .catalog import SampleCatalog
from .planning import predict_group_cvs

__all__ = [
    "AQPSession",
    "AQPResult",
    "RouteDecision",
    "predict_allocation_cvs",
]

#: Catalog prefix for sample tables injected by the router, chosen so it
#: can never collide with a user table or CTE name from the dialect.
_SAMPLE_PREFIX = "__sample__:"

#: Predicted-CV stand-in for groups a sample cannot estimate (empty
#: strata) — large enough to lose every comparison, finite so a sample
#: with one dead stratum still beats having no sample at all.
_DEAD_GROUP_CV = 10.0

#: Cap on compiled plans kept per query shape (one per literal tuple);
#: rebinding is cheap, unbounded growth on literal-varying dashboards
#: is not.
_MAX_BOUND_PLANS = 64

#: Cap on cached query shapes. The cache key includes the caller's
#: max_cv constraint, which HTTP clients control — without a bound a
#: caller varying max_cv per request would grow the dict forever.
_MAX_CACHED_SHAPES = 256

_TRACER = default_tracer()
_PLAN_CACHE = default_registry().counter(
    "repro_plan_cache_total",
    "Shape-keyed plan-cache lookups by result",
    ["result"],
)


def _shape_key(shape) -> str:
    """Stable short digest of a parameterized query shape, for traces
    and the query log (computed only when a trace is active)."""
    import hashlib

    return hashlib.blake2b(
        repr(shape).encode("utf-8"), digest_size=8
    ).hexdigest()


@dataclass(frozen=True)
class RouteDecision:
    """Where the router sent a query and why.

    ``predicted_cv`` is the routing score — the mean a-priori estimate
    CV over the chosen sample's strata and the query's aggregate
    columns; ``group_cvs`` is the same prediction *per stratum*
    (aligned with the sample's ``allocation.keys``), surfaced so the
    serving layer can embed per-group accuracy contracts in responses.
    Both are ``None`` for exact execution. ``cv_columns`` names the
    aggregate columns whose statistics actually drove the prediction —
    the columns the contract covers.
    """

    sample_name: Optional[str]  # None = exact execution
    table_name: Optional[str]  # base table the sample stands in for
    predicted_cv: Optional[float]  # routing score of the chosen sample
    reason: str
    group_cvs: Optional[Tuple[float, ...]] = None  # per-stratum CVs
    cv_columns: Optional[Tuple[str, ...]] = None  # columns predicted from
    #: Half-open event-time coverage ``[start, end)`` of the chosen
    #: sample when it is time-windowed (None otherwise).
    window_bounds: Optional[Tuple[int, int]] = None

    @property
    def approximate(self) -> bool:
        return self.sample_name is not None

    @property
    def max_group_cv(self) -> Optional[float]:
        """Worst per-stratum predicted CV (None for exact routes)."""
        if not self.group_cvs:
            return self.predicted_cv
        return max(self.group_cvs)


@dataclass
class AQPResult:
    """Answer plus routing/caching provenance."""

    table: Table
    route: RouteDecision
    plan_cached: bool
    elapsed_seconds: float

    @property
    def approximate(self) -> bool:
        return self.route.approximate

    @property
    def sample_name(self) -> Optional[str]:
        return self.route.sample_name


@dataclass
class _CachedShape:
    """One plan-cache entry: a parameterized plan plus its routing.

    ``columns`` is the projection pushdown: the set of column names the
    weighted plan can possibly touch on the sample table (group-by keys,
    aggregate arguments, WHERE/HAVING/ORDER BY references, plus the HT
    weight column). Recorded once at plan time and applied on every
    execution, so a lazy (mmap) sample table only ever materializes
    those columns. ``None`` means no projection (exact routes).
    """

    plan: object  # parameterized logical plan (weighted + scan-rewritten)
    route: RouteDecision
    columns: Optional[frozenset] = None
    bound: Dict[tuple, PhysicalPlan] = field(default_factory=dict)


class AQPSession:
    """Stateful query endpoint over base tables and stored samples."""

    def __init__(
        self,
        tables: Optional[Mapping[str, Table]] = None,
        catalog: Optional[SampleCatalog] = None,
    ) -> None:
        self.tables: Dict[str, Table] = dict(tables or {})
        self.catalog = catalog if catalog is not None else SampleCatalog()
        self._sample_sources: Dict[str, str] = {}  # sample -> base table
        #: Event-time coverage of windowed samples:
        #: ``name -> {"column", "start", "end"}`` (half-open ``[start,
        #: end)``). A windowed sample only answers queries whose WHERE
        #: clause provably stays inside its coverage.
        self._sample_windows: Dict[str, Dict] = {}
        self._shape_cache: Dict[tuple, _CachedShape] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) base table ``name``.

        Invalidates the compiled-plan cache, since cached plans may
        scan the table being replaced. Not thread-safe on its own — the
        warehouse layer serializes structural changes behind a write
        lock.
        """
        self.tables[name] = table
        self.clear_plan_cache()

    def register_sample(
        self,
        name: str,
        sample: StratifiedSample,
        table_name: str,
        replace: bool = False,
        window: Optional[Dict] = None,
    ) -> None:
        """Add a materialized sample standing in for ``table_name``.

        ``replace=True`` swaps an already-registered sample in place —
        the warehouse uses this to publish refreshed versions.
        ``window`` (``{"column", "start", "end"}``) declares the sample
        time-windowed: it covers only base rows with ``start <= column
        < end``, is *preferred* for queries whose WHERE clause provably
        stays inside that range, and is ineligible for any other query.

        Raises :class:`KeyError` when ``table_name`` is unknown and
        :class:`ValueError` when ``name`` is already registered without
        ``replace``. Invalidates the compiled-plan cache.
        """
        if table_name not in self.tables:
            raise KeyError(
                f"unknown base table {table_name!r}; "
                f"known: {', '.join(sorted(self.tables)) or '-'}"
            )
        self.catalog.add(name, sample, replace=replace)
        self._sample_sources[name] = table_name
        if window is not None:
            self._sample_windows[name] = {
                "column": str(window["column"]),
                "start": int(window["start"]),
                "end": int(window["end"]),
            }
        else:
            self._sample_windows.pop(name, None)
        self.clear_plan_cache()

    def sample_window(self, name: str) -> Optional[Dict]:
        """Event-time coverage of a windowed sample (``{"column",
        "start", "end"}``), or ``None`` for un-windowed samples."""
        window = self._sample_windows.get(name)
        return dict(window) if window else None

    def drop_sample(self, name: str) -> None:
        """Remove a sample from routing."""
        self.catalog.remove(name)
        self._sample_sources.pop(name, None)
        self._sample_windows.pop(name, None)
        self.clear_plan_cache()

    def build_sample(
        self,
        name: str,
        table_name: str,
        optimize_for: str,
        rate: float = 0.01,
        seed: int = 0,
    ) -> StratifiedSample:
        """Build and register a CVOPT sample optimized for one query."""
        from ..core.cvopt import CVOptSampler
        from ..core.spec import specs_from_sql

        if table_name not in self.tables:
            raise KeyError(f"unknown base table {table_name!r}")
        specs, derived = specs_from_sql(optimize_for)
        sampler = CVOptSampler(specs, derived=derived)
        sample = sampler.sample_rate(self.tables[table_name], rate, seed=seed)
        self.register_sample(name, sample, table_name)
        return sample

    def samples(self) -> list:
        """Names of every registered sample, in catalog order."""
        return self.catalog.names()

    def clear_plan_cache(self) -> None:
        """Drop every compiled plan (routing decisions included) and the
        process-wide group-code cache.

        Called automatically whenever a table or sample changes; safe
        to call at any time — the next query of each shape re-routes,
        re-compiles, and re-factorizes. Clearing the group-code cache
        here is deliberately coarse: the per-version token already
        prevents stale reads after a hot-swap, so this is the
        belt-and-braces layer that also bounds memory across swaps.
        """
        self._shape_cache.clear()
        default_group_code_cache().invalidate()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self, sql: str, mode: str = "auto", max_cv: Optional[float] = None
    ) -> AQPResult:
        """Answer ``sql``, routing to a stored sample when possible.

        ``mode`` is ``"auto"`` (route if a sample qualifies, else
        exact), ``"approx"`` (raise if no sample qualifies), or
        ``"exact"`` (always run on the base tables). ``max_cv`` makes
        the routing contract-aware: among qualifying samples, one whose
        worst per-group predicted CV on the queried columns meets the
        bound is preferred over the globally-lowest-CV sample; when no
        sample meets it the lowest-CV sample is still chosen and the
        caller decides whether to fall back (the session itself never
        rejects on ``max_cv``).
        """
        if mode not in ("auto", "approx", "exact"):
            raise ValueError("mode must be 'auto', 'approx' or 'exact'")
        if max_cv is not None:
            max_cv = float(max_cv)
        start = time.perf_counter()
        with _TRACER.span("aqp.parse"):
            parsed = parse_query(sql)
            shape, literals = parameterize_query(parsed)
        # Literals are parameterized out of the shape, but windowed
        # routing *depends* on the literal time bounds — two queries of
        # one shape can need different window sets. Folding the
        # extracted bounds into the key keeps the cache sound; with no
        # windowed samples registered it contributes nothing.
        key = (shape, mode, max_cv, self._time_bounds_key(parsed))
        entry = self._shape_cache.get(key)
        cached = entry is not None
        if entry is None:
            self.plan_cache_misses += 1
            _PLAN_CACHE.inc(result="miss")
            with _TRACER.span("aqp.plan"):
                entry = self._plan_shape(parsed, shape, mode, max_cv)
            if len(self._shape_cache) >= _MAX_CACHED_SHAPES:
                self._shape_cache.clear()  # re-planning is cheap
            self._shape_cache[key] = entry
        else:
            self.plan_cache_hits += 1
            _PLAN_CACHE.inc(result="hit")
        if current_trace_id() is not None:
            _TRACER.annotate(
                plan_cache="hit" if cached else "miss",
                shape_key=_shape_key(shape),
                route=entry.route.reason,
                sample=entry.route.sample_name,
            )
        # Key bound plans by (type, value) — 1, 1.0 and True hash equal
        # but must not share a plan, or binding would change dtypes.
        bound_key = tuple((type(v), v) for v in literals)
        physical = entry.bound.get(bound_key)
        if physical is None:
            if len(entry.bound) >= _MAX_BOUND_PLANS:
                entry.bound.clear()  # cheap to rebind; don't grow forever
            with _TRACER.span("aqp.compile"):
                physical = compile_plan(bind_plan(entry.plan, literals))
            entry.bound[bound_key] = physical
        with _TRACER.span("aqp.execute"):
            table = physical.run(
                self._execution_catalog(entry.route, entry.columns)
            )
        return AQPResult(
            table=table,
            route=entry.route,
            plan_cached=cached,
            elapsed_seconds=time.perf_counter() - start,
        )

    def execute(self, sql: str) -> Table:
        """Exact execution over the base tables (no sampling)."""
        return self.query(sql, mode="exact").table

    def route(
        self,
        query: SelectQuery,
        mode: str = "auto",
        max_cv: Optional[float] = None,
    ) -> RouteDecision:
        """Routing decision for an already-parsed query, without
        executing it.

        This is the router on its own: the sharded scatter-gather front
        registers metadata-only stand-ins for its samples (merged shard
        allocations under an empty row table) and calls this to pick
        one, so sample selection, CV prediction and ``max_cv``
        preference are byte-identical to the unsharded path. Raises
        :class:`~repro.engine.sql.errors.QueryExecutionError` in
        ``"approx"`` mode when no sample qualifies.
        """
        if mode == "exact":
            return RouteDecision(None, None, None, "exact mode requested")
        return self._route(query, mode, max_cv)

    # ------------------------------------------------------------------
    # planning internals
    # ------------------------------------------------------------------
    def _plan_shape(
        self,
        parsed: SelectQuery,
        shape: SelectQuery,
        mode: str,
        max_cv: Optional[float] = None,
    ) -> _CachedShape:
        # Route on the *parsed* query (literals intact) so predicate
        # columns etc. are visible; cache under the parameterized shape.
        route = (
            RouteDecision(None, None, None, "exact mode requested")
            if mode == "exact"
            else self._route(parsed, mode, max_cv)
        )
        plan = lower_query(shape)
        if route.approximate:
            scan_name = _SAMPLE_PREFIX + route.sample_name
            renamed = rename_tables(plan, {route.table_name: scan_name})
            if _produces_weighted_rows(renamed, scan_name):
                # Some path carries sample rows to the output without an
                # aggregation to consume their weights — the estimate
                # would silently be a row subset, not an answer.
                route = self._fallback(
                    mode,
                    "sampled rows would reach the output unaggregated",
                )
            else:
                plan = apply_weighting(renamed, WEIGHT_COLUMN)
        columns = None
        if route.approximate:
            # Required-column set for projection pushdown: everything
            # the weighted plan references, plus the HT weight column
            # (added by apply_weighting as a plan attribute, not an
            # expression, so the walk alone would miss it).
            columns = plan_column_refs(plan) | {WEIGHT_COLUMN}
        return _CachedShape(plan=plan, route=route, columns=columns)

    def _execution_catalog(
        self, route: RouteDecision, columns: Optional[frozenset] = None
    ) -> dict:
        catalog = dict(self.tables)
        if route.approximate:
            sample = self.catalog.get(route.sample_name)
            table = sample.table
            if columns is not None:
                keep = [c for c in table.column_names if c in columns]
                if len(keep) < len(table.column_names):
                    projected = table.select(keep)
                    # Same immutable rows, shared column buffers — the
                    # group-code cache token stays valid on the
                    # projection.
                    projected.cache_token = table.cache_token
                    table = projected
            catalog[_SAMPLE_PREFIX + route.sample_name] = table
        return catalog

    def _route(
        self,
        query: SelectQuery,
        mode: str,
        max_cv: Optional[float] = None,
    ) -> RouteDecision:
        if not self._sample_sources:
            return self._fallback(mode, "no samples registered")
        if not _has_aggregate(query):
            return self._fallback(
                mode, "query has no aggregation to reweight"
            )
        referenced = _referenced_tables(query)
        needed = _grouping_attributes(query)
        agg_columns = _aggregate_columns(query)

        # (rank, span, score, extra_attrs, name, table_name, group_cvs,
        #  cv_columns, window_bounds) — rank 0 is a windowed sample
        # covering the query's time range (time-matched beats
        # all-of-history: its rows are all in-range, so none of the
        # budget is wasted on rows the WHERE clause discards). Among
        # covering windowed candidates the *tightest* span wins, for
        # the same reason: a wider slide's extra rows are discarded by
        # the WHERE clause, and its contract (predicted CV computed on
        # all merged rows, window_bounds) would describe rows the query
        # never touches — e.g. a stale ``@slide`` left registered by an
        # earlier wider-ranged query must not outrank the exactly-
        # matching member. With no windowed samples every rank is 1,
        # every span 0, and ordering is unchanged.
        best = None  # globally-lowest predicted CV
        best_ok = None  # lowest predicted CV among max_cv-satisfying
        # Data horizon per (base table, timestamp column): the furthest
        # ``end`` any registered window reaches. The warehouse rolls
        # windows forward with every ingest, so no base row is newer
        # than this — which is what makes an *unbounded* ``ts >= X``
        # query answerable by a window that reaches the horizon.
        horizons: Dict[tuple, int] = {}
        for nm, w in self._sample_windows.items():
            k = (self._sample_sources.get(nm), w["column"])
            end = int(w["end"])
            if k not in horizons or end > horizons[k]:
                horizons[k] = end
        for name, table_name in self._sample_sources.items():
            if table_name not in referenced:
                continue
            window = self._sample_windows.get(name)
            rank = 1
            window_bounds = None
            if window is not None:
                bounds = extract_time_bounds(query, window["column"])
                if bounds is None:
                    continue  # all-of-history query; window can't answer
                lo, hi = bounds
                if lo is None or lo < window["start"]:
                    continue  # reaches before coverage
                if hi is None:
                    # Open-ended future: only a window reaching the
                    # data horizon covers it (rows can exist anywhere
                    # up to the horizon, never past it).
                    horizon = horizons[(table_name, window["column"])]
                    if window["end"] < horizon:
                        continue
                elif hi > window["end"]:
                    continue  # reaches past coverage
                rank = 0
                window_bounds = (window["start"], window["end"])
            sample = self.catalog.get(name)
            attrs = set(sample.allocation.by)
            if not needed <= attrs:
                continue
            score, group_cvs, cv_columns = self._predict_cvs(
                sample, agg_columns
            )
            extra = len(attrs - needed)
            span = (
                window_bounds[1] - window_bounds[0]
                if window_bounds is not None
                else 0
            )
            candidate = (
                rank, span, score, extra, name, table_name, group_cvs,
                cv_columns, window_bounds,
            )
            if best is None or candidate[:4] < best[:4]:
                best = candidate
            if max_cv is not None:
                worst = float(max(group_cvs)) if len(group_cvs) else 0.0
                if worst <= max_cv and (
                    best_ok is None or candidate[:4] < best_ok[:4]
                ):
                    best_ok = candidate
        if best is None:
            return self._fallback(
                mode,
                "no stored sample stratifies a superset of the query's "
                "group-by attributes",
            )
        # Contract-aware preference: a sample that *meets* the caller's
        # max_cv on the queried columns beats the globally-lowest-CV
        # sample that would violate it.
        contract_note = ""
        if best_ok is not None and best_ok[4] != best[4]:
            contract_note = (
                f", preferred over {best[4]!r} (CV {best[2]:.4f}) because "
                f"its per-group CV meets max_cv {max_cv:.4f}"
            )
            best = best_ok
        elif best_ok is not None:
            contract_note = f", meets max_cv {max_cv:.4f}"
        (
            _, _, score, _, name, table_name, group_cvs, cv_columns,
            window_bounds,
        ) = best
        columns_note = (
            f" on column(s) {', '.join(cv_columns)}" if cv_columns else ""
        )
        window_note = (
            f", windowed [{window_bounds[0]}, {window_bounds[1]})"
            if window_bounds is not None
            else ""
        )
        return RouteDecision(
            sample_name=name,
            table_name=table_name,
            predicted_cv=score,
            reason=f"sample {name!r} covers grouping {sorted(needed) or '*'} "
            f"with predicted CV {score:.4f}{columns_note}{window_note}"
            f"{contract_note}",
            group_cvs=tuple(float(v) for v in group_cvs),
            cv_columns=tuple(cv_columns),
            window_bounds=window_bounds,
        )

    def _time_bounds_key(self, parsed: SelectQuery) -> tuple:
        """Hashable per-query time bounds over every windowed column.

        Empty (and free) while no windowed samples are registered.
        """
        if not self._sample_windows:
            return ()
        columns = sorted(
            {w["column"] for w in self._sample_windows.values()}
        )
        return tuple(
            (column, extract_time_bounds(parsed, column))
            for column in columns
        )

    def _fallback(self, mode: str, reason: str) -> RouteDecision:
        if mode == "approx":
            raise QueryExecutionError(
                f"cannot answer approximately: {reason}"
            )
        return RouteDecision(None, None, None, reason + "; executing exactly")

    def _predict_cvs(
        self, sample: StratifiedSample, agg_columns
    ) -> Tuple[float, np.ndarray, Tuple[str, ...]]:
        """Routing score plus per-stratum predicted CVs.

        Returns ``(score, group_cvs, cv_columns)`` where ``group_cvs``
        has one entry per stratum of ``sample`` (aligned with
        ``sample.allocation.keys``, averaged elementwise over the
        query's aggregate columns), ``score`` is its mean — the number
        the router ranks candidates by — and ``cv_columns`` names the
        aggregate columns whose statistics the prediction covers. Uses
        the a-priori CV prediction of :mod:`repro.aqp.planning` with
        per-stratum data CVs taken from the sample's persisted pass-1
        moments for the *queried* column when available (exact over the
        full population, kept exact by maintenance), falling back to
        CVs measured on the sample's own rows. Strata the sample cannot
        estimate (no rows) contribute the finite ``_DEAD_GROUP_CV``
        sentinel rather than ``inf``.
        """
        return predict_allocation_cvs(
            sample.allocation,
            agg_columns,
            lambda column: _column_data_cvs(sample, column),
        )


def predict_allocation_cvs(
    allocation, agg_columns, data_cvs_for
) -> Tuple[float, np.ndarray, Tuple[str, ...]]:
    """Core of the routing-score prediction, shared with the sharded
    scatter-gather front (which computes it over *merged* shard
    allocations — single-sourced here so the two paths cannot
    disagree). ``data_cvs_for(column)`` returns the per-stratum data
    CVs of one column, or ``None`` when it has no statistics.
    """
    per_group = []
    covered = []
    for column in agg_columns:
        data_cvs = data_cvs_for(column)
        if data_cvs is None:
            continue
        cvs = predict_group_cvs(
            allocation.populations, data_cvs, allocation.sizes
        )
        per_group.append(
            np.where(np.isfinite(cvs), cvs, _DEAD_GROUP_CV)
        )
        covered.append(column)
    if not per_group:
        # COUNT(*)-style queries: the estimate CV is driven purely by
        # the sampling fractions.
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(
                allocation.populations > 0,
                allocation.sizes / np.maximum(allocation.populations, 1),
                1.0,
            )
        group_cvs = 1.0 - fraction
        score = float(group_cvs.mean()) if len(group_cvs) else 0.0
        return score, group_cvs, ()
    group_cvs = np.mean(per_group, axis=0)
    score = float(group_cvs.mean()) if len(group_cvs) else 0.0
    return score, group_cvs, tuple(covered)


# ----------------------------------------------------------------------
# query-shape analysis helpers
# ----------------------------------------------------------------------
def _walk_blocks(query: SelectQuery):
    """Yield every SELECT block in the query tree."""
    yield query
    for _, cte in query.ctes:
        yield from _walk_blocks(cte)
    stack = [query.from_clause]
    while stack:
        ref = stack.pop()
        if ref is None:
            continue
        if isinstance(ref, SubqueryTable):
            yield from _walk_blocks(ref.query)
        elif isinstance(ref, JoinClause):
            stack.append(ref.left)
            stack.append(ref.right)


def _has_aggregate(query: SelectQuery) -> bool:
    return any(block.is_aggregate for block in _walk_blocks(query))


def _referenced_tables(query: SelectQuery) -> set:
    """Base-table names scanned anywhere in the query (minus CTE names)."""
    names: set = set()
    cte_names: set = set()
    for block in _walk_blocks(query):
        cte_names.update(name for name, _ in block.ctes)
        stack = [block.from_clause]
        while stack:
            ref = stack.pop()
            if ref is None:
                continue
            if isinstance(ref, NamedTable):
                names.add(ref.name)
            elif isinstance(ref, JoinClause):
                stack.append(ref.left)
                stack.append(ref.right)
    return names - cte_names


def _grouping_attributes(query: SelectQuery) -> set:
    """All group-by attributes across the query's blocks.

    Computed keys contribute the columns they reference (same rule as
    sample construction in :func:`repro.core.spec.specs_from_sql`);
    aliases are resolved through each block's SELECT list.
    """
    needed: set = set()
    for block in _walk_blocks(query):
        alias_map = {
            item.alias: item.expr for item in block.items if item.alias
        }
        for expr in block.group_by:
            if isinstance(expr, ColumnRef) and expr.name in alias_map:
                expr = alias_map[expr.name]
            if isinstance(expr, ColumnRef):
                needed.add(expr.name.split(".")[-1])
            else:
                needed.update(
                    ref.name.split(".")[-1]
                    for ref in collect_column_refs(expr)
                )
    return needed


def _aggregate_columns(query: SelectQuery) -> Tuple[str, ...]:
    """Plain columns aggregated anywhere in the query, deduplicated."""
    columns = []
    for block in _walk_blocks(query):
        for item in block.items:
            for call in collect_agg_calls(item.expr):
                if isinstance(call.arg, ColumnRef):
                    columns.append(call.arg.name.split(".")[-1])
    return tuple(dict.fromkeys(columns))


def _produces_weighted_rows(plan, sample_scan: str, env=None) -> bool:
    """Whether ``plan``'s output rows can still carry sample weights.

    Mirrors the weighting rewrite's dataflow: scans of the sample
    introduce weighted rows, projections/filters/joins/CTEs pass them
    through, and aggregation consumes them. A plan whose root is still
    weighted would emit raw sample rows as if they were an answer, so
    the router must refuse it.
    """
    from ..engine.sql import planner as lp

    env = env or {}
    if isinstance(plan, lp.Scan):
        if plan.table == sample_scan:
            return True
        return env.get(plan.table, False)
    if isinstance(plan, lp.Dual):
        return False
    if isinstance(plan, lp.SubqueryScan):
        return _produces_weighted_rows(plan.plan, sample_scan, env)
    if isinstance(plan, lp.Join):
        return _produces_weighted_rows(
            plan.left, sample_scan, env
        ) or _produces_weighted_rows(plan.right, sample_scan, env)
    if isinstance(plan, (lp.Filter, lp.Project, lp.OrderBy, lp.Limit)):
        return _produces_weighted_rows(plan.child, sample_scan, env)
    if isinstance(plan, (lp.GroupAggregate, lp.CubeAggregate)):
        return False  # aggregation consumes the weights
    if isinstance(plan, lp.WithCTE):
        extended = dict(env)
        extended[plan.name] = _produces_weighted_rows(
            plan.definition, sample_scan, env
        )
        return _produces_weighted_rows(plan.body, sample_scan, extended)
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def _column_data_cvs(
    sample: StratifiedSample, column: str
) -> Optional[np.ndarray]:
    """Per-stratum data CVs of ``column``, preferring exact moments.

    A warehouse sample carries per-column pass-1 moments in its
    allocation statistics (aligned with ``allocation.keys``) — exact
    over the full population and kept exact across refreshes — so CV
    predictions for the queried column come from *that column's*
    moments, not from whichever column the sample happened to be
    re-balanced on. Samples without persisted moments for the column
    fall back to measuring on their own rows.
    """
    stats = sample.allocation.stats
    if stats is not None and column in stats.columns:
        return np.nan_to_num(
            stats.stats_for(column).cv(mean_floor=1e-9)
        )
    return _sample_data_cvs(sample, column)


def _sample_data_cvs(
    sample: StratifiedSample, column: str
) -> Optional[np.ndarray]:
    """Per-stratum |sigma/mu| of ``column`` measured on the sample rows."""
    table = sample.table
    if column not in table or STRATUM_COLUMN not in table:
        return None
    col = table.column(column)
    try:
        values = col.values_numeric().astype(np.float64)
    except TypeError:
        return None
    gids = table.column(STRATUM_COLUMN).data.astype(np.int64)
    n = sample.allocation.num_strata
    counts = np.bincount(gids, minlength=n).astype(np.float64)
    sums = np.bincount(gids, weights=values, minlength=n)
    sums_sq = np.bincount(gids, weights=values**2, minlength=n)
    with np.errstate(divide="ignore", invalid="ignore"):
        mean = np.where(counts > 0, sums / counts, np.nan)
        ex2 = np.where(counts > 0, sums_sq / counts, np.nan)
        var = np.maximum(ex2 - mean**2, 0.0)
        cv = np.where(np.abs(mean) > 0, np.sqrt(var) / np.abs(mean), 0.0)
    return np.nan_to_num(cv)
