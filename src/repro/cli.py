"""Command-line interface.

Subcommands::

    repro-cvopt generate --dataset openaq --rows 200000 --out openaq.npz
    repro-cvopt sample   --table openaq.npz --query "SELECT ..." \
                         --rate 0.01 --method cvopt --out sample
    repro-cvopt query    --table openaq.npz --sql "SELECT ..." [--explain]
    repro-cvopt aqp      --table openaq.npz --sql "SELECT ..." --rate 0.01
    repro-cvopt experiment --dataset openaq --query AQ3 --rate 0.01
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .aqp.runner import QueryTask, run_experiment
from .baselines import make_samplers
from .core.cvopt import CVOptSampler
from .core.cvopt_inf import CVOptInfSampler
from .core.spec import specs_from_sql
from .datasets import generate_bikes, generate_openaq
from .engine.sql.executor import execute_sql
from .engine.table import Table
from .queries import PAPER_QUERIES, get_query

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cvopt",
        description="CVOPT: random sampling for group-by queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--dataset", choices=["openaq", "bikes"], required=True)
    gen.add_argument("--rows", type=int, default=200_000)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True)

    samp = sub.add_parser("sample", help="build a stratified sample")
    samp.add_argument("--table", required=True, help="npz table path")
    samp.add_argument("--query", required=True, help="SQL to optimize for")
    samp.add_argument("--rate", type=float, default=0.01)
    samp.add_argument(
        "--method",
        choices=["cvopt", "cvopt-inf", "uniform", "cs", "rl", "sample-seek"],
        default="cvopt",
    )
    samp.add_argument("--seed", type=int, default=0)
    samp.add_argument("--out", required=True, help="output path stem")

    query = sub.add_parser("query", help="run SQL on a table exactly")
    query.add_argument("--table", required=True)
    query.add_argument("--name", default=None, help="table name in the SQL")
    query.add_argument("--sql", required=True)
    query.add_argument("--limit", type=int, default=20)
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the logical plan instead of executing",
    )

    aqp = sub.add_parser(
        "aqp", help="answer SQL approximately through an AQP session"
    )
    aqp.add_argument("--table", required=True, help="npz table path")
    aqp.add_argument("--name", default=None, help="table name in the SQL")
    aqp.add_argument("--sql", required=True)
    aqp.add_argument(
        "--optimize-for",
        default=None,
        help="SQL the sample is built for (default: the query itself)",
    )
    aqp.add_argument("--rate", type=float, default=0.01)
    aqp.add_argument("--seed", type=int, default=0)
    aqp.add_argument("--limit", type=int, default=20)

    exp = sub.add_parser(
        "experiment", help="compare methods on a paper query"
    )
    exp.add_argument("--dataset", choices=["openaq", "bikes"], required=True)
    exp.add_argument(
        "--query", required=True, help=f"one of {', '.join(PAPER_QUERIES)}"
    )
    exp.add_argument("--rows", type=int, default=100_000)
    exp.add_argument("--rate", type=float, default=0.01)
    exp.add_argument("--repetitions", type=int, default=3)
    exp.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_generate(args) -> int:
    if args.dataset == "openaq":
        table = generate_openaq(num_rows=args.rows, seed=args.seed)
    else:
        table = generate_bikes(num_rows=args.rows, seed=args.seed)
    table.save(args.out)
    print(f"wrote {table.num_rows} rows ({args.dataset}) to {args.out}")
    return 0


def _cmd_sample(args) -> int:
    table = Table.load(args.table)
    specs, derived = specs_from_sql(args.query)
    if args.method == "cvopt":
        sampler = CVOptSampler(specs, derived=derived)
    elif args.method == "cvopt-inf":
        sampler = CVOptInfSampler(specs, derived=derived)
    else:
        lineup = make_samplers(specs, derived)
        chosen = {
            "uniform": "Uniform",
            "cs": "CS",
            "rl": "RL",
            "sample-seek": "Sample+Seek",
        }[args.method]
        sampler = lineup[chosen]
    sample = sampler.sample_rate(table, args.rate, seed=args.seed)
    sample.save(args.out)
    print(
        f"{sample.method}: {sample.num_rows} rows over "
        f"{sample.allocation.num_strata} strata -> {args.out}.rows.npz"
    )
    return 0


def _cmd_query(args) -> int:
    table = Table.load(args.table)
    name = args.name or table.name or "T"
    if args.explain:
        from .engine.sql.parser import parse_query
        from .engine.sql.planner import format_plan, lower_query

        print(format_plan(lower_query(parse_query(args.sql))))
        return 0
    result = execute_sql(args.sql, {name: table})
    _print_table(result, args.limit)
    return 0


def _cmd_aqp(args) -> int:
    from .aqp.session import AQPSession

    table = Table.load(args.table)
    name = args.name or table.name or "T"
    session = AQPSession({name: table})
    optimize_for = args.optimize_for or args.sql
    try:
        sample = session.build_sample(
            "cli", name, optimize_for, rate=args.rate, seed=args.seed
        )
    except ValueError as exc:
        print(f"cannot build a sample for this query: {exc}", file=sys.stderr)
        return 2
    print(
        f"built {sample.method} sample: {sample.num_rows} rows over "
        f"{sample.allocation.num_strata} strata "
        f"(rate {sample.sampling_rate:.2%})"
    )
    result = session.query(args.sql)
    route = result.route
    if route.approximate:
        print(f"routed to sample {route.sample_name!r}: {route.reason}")
    else:
        print(f"exact execution: {route.reason}")
    _print_table(result.table, args.limit)
    return 0


def _cmd_experiment(args) -> int:
    paper_query = get_query(args.query)
    if paper_query.dataset != args.dataset:
        print(
            f"query {args.query} belongs to dataset {paper_query.dataset}",
            file=sys.stderr,
        )
        return 2
    if args.dataset == "openaq":
        table = generate_openaq(num_rows=args.rows)
    else:
        table = generate_bikes(num_rows=args.rows)
    specs, derived = specs_from_sql(paper_query.sql)
    samplers = make_samplers(specs, derived)
    task = QueryTask(
        name=paper_query.name,
        sql=paper_query.sql,
        table_name=paper_query.table_name,
    )
    result = run_experiment(
        table,
        [task],
        samplers,
        rate=args.rate,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    print(f"{paper_query.name} ({paper_query.kind}), rate={args.rate:.2%}")
    print(result.table(metric="mean_error"))
    print()
    print(result.table(metric="max_error"))
    return 0


def _print_table(table: Table, limit: int) -> None:
    names = table.column_names
    print("\t".join(names))
    decoded = {n: table.column(n).decode() for n in names}
    for i in range(min(limit, table.num_rows)):
        row = []
        for n in names:
            value = decoded[n][i]
            if isinstance(value, (float, np.floating)):
                row.append(f"{value:.6g}")
            else:
                row.append(str(value))
        print("\t".join(row))
    if table.num_rows > limit:
        print(f"... ({table.num_rows - limit} more rows)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "sample": _cmd_sample,
        "query": _cmd_query,
        "aqp": _cmd_aqp,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
