"""Command-line interface.

Subcommands::

    repro-cvopt generate --dataset openaq --rows 200000 --out openaq.npz
    repro-cvopt sample   --table openaq.npz --query "SELECT ..." \
                         --rate 0.01 --method cvopt --out sample
    repro-cvopt query    --table openaq.npz --sql "SELECT ..." [--explain]
    repro-cvopt aqp      --table openaq.npz --sql "SELECT ..." --rate 0.01
    repro-cvopt experiment --dataset openaq --query AQ3 --rate 0.01
    repro-cvopt warehouse build   --root wh --table openaq.npz --name s \
                                  --group-by country,parameter \
                                  --columns value,latitude --budget 2000
    repro-cvopt warehouse refresh --root wh --name s --batch more.npz
    repro-cvopt warehouse advise  --root wh --table openaq.npz \
                                  --workload queries.log --storage-budget 5000
    repro-cvopt warehouse serve   --root wh --table openaq.npz --sql "..."
    repro-cvopt warehouse serve   --root wh --table openaq.npz --http \
                                  --port 8080 --watch incoming/
    repro-cvopt warehouse daemon  --root wh --table openaq.npz \
                                  --watch incoming/
    repro-cvopt warehouse stats   --root wh

``warehouse build/refresh/serve/daemon`` additionally accept
``--backend {npz,parquet,memory,mmap}`` to pick the physical rows format of
new versions (reads auto-detect per version; see docs/STORAGE.md).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .aqp.runner import QueryTask, run_experiment
from .baselines import make_samplers
from .core.cvopt import CVOptSampler
from .core.cvopt_inf import CVOptInfSampler
from .core.spec import specs_from_sql
from .datasets import generate_bikes, generate_openaq
from .engine.sql.executor import execute_sql
from .engine.table import Table
from .queries import PAPER_QUERIES, get_query

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cvopt",
        description="CVOPT: random sampling for group-by queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--dataset", choices=["openaq", "bikes"], required=True)
    gen.add_argument("--rows", type=int, default=200_000)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True)

    samp = sub.add_parser("sample", help="build a stratified sample")
    samp.add_argument("--table", required=True, help="npz table path")
    samp.add_argument("--query", required=True, help="SQL to optimize for")
    samp.add_argument("--rate", type=float, default=0.01)
    samp.add_argument(
        "--method",
        choices=["cvopt", "cvopt-inf", "uniform", "cs", "rl", "sample-seek"],
        default="cvopt",
    )
    samp.add_argument("--seed", type=int, default=0)
    samp.add_argument("--out", required=True, help="output path stem")

    query = sub.add_parser("query", help="run SQL on a table exactly")
    query.add_argument("--table", required=True)
    query.add_argument("--name", default=None, help="table name in the SQL")
    query.add_argument("--sql", required=True)
    query.add_argument("--limit", type=int, default=20)
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the logical plan instead of executing",
    )

    aqp = sub.add_parser(
        "aqp", help="answer SQL approximately through an AQP session"
    )
    aqp.add_argument("--table", required=True, help="npz table path")
    aqp.add_argument("--name", default=None, help="table name in the SQL")
    aqp.add_argument("--sql", required=True)
    aqp.add_argument(
        "--optimize-for",
        default=None,
        help="SQL the sample is built for (default: the query itself)",
    )
    aqp.add_argument("--rate", type=float, default=0.01)
    aqp.add_argument("--seed", type=int, default=0)
    aqp.add_argument("--limit", type=int, default=20)

    exp = sub.add_parser(
        "experiment", help="compare methods on a paper query"
    )
    exp.add_argument("--dataset", choices=["openaq", "bikes"], required=True)
    exp.add_argument(
        "--query", required=True, help=f"one of {', '.join(PAPER_QUERIES)}"
    )
    exp.add_argument("--rows", type=int, default=100_000)
    exp.add_argument("--rate", type=float, default=0.01)
    exp.add_argument("--repetitions", type=int, default=3)
    exp.add_argument("--seed", type=int, default=0)

    wh = sub.add_parser(
        "warehouse", help="persistent sample warehouse operations"
    )
    whsub = wh.add_subparsers(dest="wh_command", required=True)

    whb = whsub.add_parser("build", help="two-pass build into the store")
    whb.add_argument("--root", required=True, help="store directory")
    whb.add_argument(
        "--backend", choices=["npz", "parquet", "memory", "mmap"], default="npz",
        help="rows storage backend (default npz; parquet needs pyarrow, "
        "falls back to npz; mmap = zero-copy lazy columns)",
    )
    whb.add_argument("--table", required=True, help="npz base-table path")
    whb.add_argument("--name", required=True, help="sample name")
    whb.add_argument("--table-name", default=None, help="SQL table name")
    whb.add_argument(
        "--group-by", required=True, help="comma-separated stratification"
    )
    columns = whb.add_mutually_exclusive_group(required=True)
    columns.add_argument(
        "--columns",
        help="comma-separated value columns to track (first = primary); "
        "per-stratum moments of every tracked column are persisted and "
        "kept exact by refreshes",
    )
    columns.add_argument(
        "--value", help="legacy alias of --columns"
    )
    group = whb.add_mutually_exclusive_group(required=True)
    group.add_argument("--budget", type=int, help="sample rows")
    group.add_argument("--rate", type=float, help="sampling rate (0, 1]")
    whb.add_argument("--seed", type=int, default=0)
    whb.add_argument(
        "--shards", type=int, default=None,
        help="stratum-hash shard count for a new store (default: "
        "auto-detect from the store; 1 = the plain single-store layout)",
    )
    whb.add_argument(
        "--window", default=None,
        help="tumbling-window width (e.g. 1h, 30m, 86400 seconds): "
        "partitions rows by --ts-column and persists one windowed "
        "member per window instead of a single sample",
    )
    whb.add_argument(
        "--ts-column", default=None,
        help="integer timestamp column that assigns rows to windows "
        "(required with --window)",
    )
    whb.add_argument(
        "--decay", type=float, default=None,
        help="per-window exponential decay factor in (0, 1] applied "
        "when merging windows into a sliding answer (unsharded only; "
        "serving-time parameter, not persisted)",
    )
    whb.add_argument(
        "--retention", type=int, default=None,
        help="keep only the newest N windows, deleting older members "
        "at build time (unsharded only)",
    )

    whr = whsub.add_parser(
        "refresh", help="fold an appended batch into a stored sample"
    )
    whr.add_argument("--root", required=True)
    whr.add_argument(
        "--backend", choices=["npz", "parquet", "memory", "mmap"], default="npz",
        help="rows storage backend (default npz; parquet needs pyarrow, "
        "falls back to npz; mmap = zero-copy lazy columns)",
    )
    whr.add_argument("--name", required=True)
    whr.add_argument("--batch", required=True, help="npz batch path")
    whr.add_argument(
        "--full-table",
        default=None,
        help="npz of the complete data; enables full-rebuild escalation",
    )
    whr.add_argument(
        "--columns", default=None,
        help="comma-separated override of the tracked value columns "
        "(default: the columns recorded at build time)",
    )
    whr.add_argument("--seed", type=int, default=0)
    whr.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: auto-detect from the store)",
    )

    wha = whsub.add_parser(
        "advise", help="recommend samples for a query-log workload"
    )
    wha.add_argument("--root", default=None, help="store (for --materialize)")
    wha.add_argument("--table", required=True, help="npz base-table path")
    wha.add_argument("--table-name", default=None)
    wha_src = wha.add_mutually_exclusive_group(required=True)
    wha_src.add_argument(
        "--workload",
        help="query log: one SQL statement or JSON object per line",
    )
    wha_src.add_argument(
        "--query-log",
        help="structured JSONL query log written by 'warehouse serve "
        "--query-log' (rotated siblings are read too)",
    )
    wha.add_argument("--storage-budget", type=int, required=True)
    wha.add_argument("--target-cv", type=float, default=0.05)
    wha.add_argument(
        "--materialize", action="store_true",
        help="build the recommended samples into --root",
    )
    wha.add_argument("--seed", type=int, default=0)

    whs = whsub.add_parser(
        "serve", help="answer SQL through the warehouse service "
        "(one-shot with --sql, or an HTTP server with --http)"
    )
    whs.add_argument("--root", required=True)
    whs.add_argument(
        "--backend", choices=["npz", "parquet", "memory", "mmap"], default="npz",
        help="rows storage backend (default npz; parquet needs pyarrow, "
        "falls back to npz; mmap = zero-copy lazy columns)",
    )
    whs.add_argument("--table", required=True, help="npz base-table path")
    whs.add_argument("--table-name", default=None)
    whs.add_argument("--sql", default=None, action="append",
                     help="repeatable; each SQL is answered in order")
    whs.add_argument(
        "--mode", choices=["auto", "approx", "exact"], default="auto"
    )
    whs.add_argument("--limit", type=int, default=20)
    whs.add_argument(
        "--max-cv", type=float, default=None,
        help="reject/fall back when the predicted per-group CV exceeds this",
    )
    whs.add_argument(
        "--max-staleness", type=float, default=None,
        help="reject/fall back when the served sample is staler than this",
    )
    whs.add_argument(
        "--on-violation", choices=["fallback", "reject"],
        default="fallback",
        help="what a violated accuracy constraint does (default: exact "
        "fallback)",
    )
    whs.add_argument(
        "--http", action="store_true",
        help="start an HTTP server instead of answering --sql once",
    )
    whs.add_argument("--host", default="127.0.0.1")
    whs.add_argument("--port", type=int, default=8080,
                     help="0 picks an ephemeral port")
    whs.add_argument("--max-concurrency", type=int, default=8)
    whs.add_argument("--max-pending", type=int, default=64)
    whs.add_argument("--queue-timeout", type=float, default=30.0)
    whs.add_argument(
        "--watch", default=None,
        help="with --http: also run the maintenance daemon on this "
        "directory",
    )
    whs.add_argument(
        "--default-sample", default=None,
        help="daemon target for batch files without a '<sample>__' prefix",
    )
    whs.add_argument("--daemon-interval", type=float, default=1.0)
    whs.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: auto-detect from the store)",
    )
    whs.add_argument(
        "--shard-workers", choices=["process", "inprocess"],
        default="process",
        help="run shard workers as separate OS processes (default) or "
        "in-process (single-core hosts, memory backend)",
    )
    whs.add_argument(
        "--query-log", default=None,
        help="with --http: append one JSONL record per query here "
        "(size-rotated; feeds 'warehouse advise --query-log')",
    )
    whs.add_argument(
        "--metrics", action="store_true", default=True,
        help="record metrics for GET /metrics (default on)",
    )
    whs.add_argument(
        "--no-metrics", dest="metrics", action="store_false",
        help="disable metrics collection (instrumentation becomes no-ops)",
    )

    whd = whsub.add_parser(
        "daemon",
        help="watch a directory; refresh stored samples from dropped "
        "batch files",
    )
    whd.add_argument("--root", required=True, help="store directory")
    whd.add_argument(
        "--backend", choices=["npz", "parquet", "memory", "mmap"], default="npz",
        help="rows storage backend (default npz; parquet needs pyarrow, "
        "falls back to npz; mmap = zero-copy lazy columns)",
    )
    whd.add_argument(
        "--table", action="append", default=[],
        help="npz base-table path (repeatable; enables exact fallback "
        "and rebuild escalation)",
    )
    whd.add_argument(
        "--table-name", action="append", default=[],
        help="SQL table name for the matching --table (positional pairing)",
    )
    whd.add_argument("--watch", required=True, help="incoming batch dir")
    whd.add_argument(
        "--sample", default=None,
        help="default sample for batch files without a '<sample>__' prefix",
    )
    whd.add_argument("--interval", type=float, default=1.0)
    whd.add_argument(
        "--once", action="store_true",
        help="ingest the current backlog and exit",
    )
    whd.add_argument(
        "--max-retries", type=int, default=None,
        help="re-attempts (with capped exponential backoff) before a "
        "failed batch is quarantined (default 3; --once implies 0 — a "
        "single-shot run cannot wait out a backoff)",
    )
    whd.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve this process's metrics (repro_daemon_*) on "
        "GET /metrics at 127.0.0.1:PORT (0 picks a free port); "
        "default: no listener",
    )
    whd.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: auto-detect from the store)",
    )
    whd.add_argument(
        "--shard-workers", choices=["process", "inprocess"],
        default="process",
        help="run shard workers as separate OS processes (default) or "
        "in-process (single-core hosts, memory backend)",
    )

    wht = whsub.add_parser("stats", help="store + serving accounting")
    wht.add_argument("--root", required=True)
    return parser


def _cmd_generate(args) -> int:
    if args.dataset == "openaq":
        table = generate_openaq(num_rows=args.rows, seed=args.seed)
    else:
        table = generate_bikes(num_rows=args.rows, seed=args.seed)
    table.save(args.out)
    print(f"wrote {table.num_rows} rows ({args.dataset}) to {args.out}")
    return 0


def _cmd_sample(args) -> int:
    table = Table.load(args.table)
    specs, derived = specs_from_sql(args.query)
    if args.method == "cvopt":
        sampler = CVOptSampler(specs, derived=derived)
    elif args.method == "cvopt-inf":
        sampler = CVOptInfSampler(specs, derived=derived)
    else:
        lineup = make_samplers(specs, derived)
        chosen = {
            "uniform": "Uniform",
            "cs": "CS",
            "rl": "RL",
            "sample-seek": "Sample+Seek",
        }[args.method]
        sampler = lineup[chosen]
    sample = sampler.sample_rate(table, args.rate, seed=args.seed)
    sample.save(args.out)
    print(
        f"{sample.method}: {sample.num_rows} rows over "
        f"{sample.allocation.num_strata} strata -> {args.out}.rows.npz"
    )
    return 0


def _cmd_query(args) -> int:
    table = Table.load(args.table)
    name = args.name or table.name or "T"
    if args.explain:
        from .engine.sql.parser import parse_query
        from .engine.sql.planner import format_plan, lower_query

        print(format_plan(lower_query(parse_query(args.sql))))
        return 0
    result = execute_sql(args.sql, {name: table})
    _print_table(result, args.limit)
    return 0


def _cmd_aqp(args) -> int:
    from .aqp.session import AQPSession

    table = Table.load(args.table)
    name = args.name or table.name or "T"
    session = AQPSession({name: table})
    optimize_for = args.optimize_for or args.sql
    try:
        sample = session.build_sample(
            "cli", name, optimize_for, rate=args.rate, seed=args.seed
        )
    except ValueError as exc:
        print(f"cannot build a sample for this query: {exc}", file=sys.stderr)
        return 2
    print(
        f"built {sample.method} sample: {sample.num_rows} rows over "
        f"{sample.allocation.num_strata} strata "
        f"(rate {sample.sampling_rate:.2%})"
    )
    result = session.query(args.sql)
    route = result.route
    if route.approximate:
        print(f"routed to sample {route.sample_name!r}: {route.reason}")
    else:
        print(f"exact execution: {route.reason}")
    _print_table(result.table, args.limit)
    return 0


def _cmd_experiment(args) -> int:
    paper_query = get_query(args.query)
    if paper_query.dataset != args.dataset:
        print(
            f"query {args.query} belongs to dataset {paper_query.dataset}",
            file=sys.stderr,
        )
        return 2
    if args.dataset == "openaq":
        table = generate_openaq(num_rows=args.rows)
    else:
        table = generate_bikes(num_rows=args.rows)
    specs, derived = specs_from_sql(paper_query.sql)
    samplers = make_samplers(specs, derived)
    task = QueryTask(
        name=paper_query.name,
        sql=paper_query.sql,
        table_name=paper_query.table_name,
    )
    result = run_experiment(
        table,
        [task],
        samplers,
        rate=args.rate,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    print(f"{paper_query.name} ({paper_query.kind}), rate={args.rate:.2%}")
    print(result.table(metric="mean_error"))
    print()
    print(result.table(metric="max_error"))
    return 0


def _cmd_warehouse(args) -> int:
    handlers = {
        "build": _cmd_warehouse_build,
        "refresh": _cmd_warehouse_refresh,
        "advise": _cmd_warehouse_advise,
        "serve": _cmd_warehouse_serve,
        "daemon": _cmd_warehouse_daemon,
        "stats": _cmd_warehouse_stats,
    }
    return handlers[args.wh_command](args)


def _resolve_shards(root, requested) -> int:
    """Effective shard count: the store's recorded topology wins; a
    conflicting explicit request is an error; a fresh store defaults to
    unsharded."""
    from .warehouse import ShardedSampleStore

    recorded = ShardedSampleStore.shard_count(root)
    if recorded is not None:
        if requested is not None and int(requested) != recorded:
            raise SystemExit(
                f"store {root} is sharded {recorded} ways; "
                f"requested --shards {requested}"
            )
        return recorded
    return int(requested) if requested else 1


def _cmd_warehouse_build(args) -> int:
    from .warehouse import SampleMaintainer, SampleStore

    table = Table.load(args.table)
    table_name = args.table_name or table.name or "T"
    budget = args.budget
    if budget is None:
        if not 0 < args.rate <= 1:
            print("--rate must be in (0, 1]", file=sys.stderr)
            return 2
        budget = max(1, int(round(table.num_rows * args.rate)))
    elif budget <= 0:
        print("--budget must be positive", file=sys.stderr)
        return 2
    raw_columns = args.columns or args.value or ""
    value_columns = [c for c in raw_columns.split(",") if c]
    if not value_columns:
        print("--columns must name at least one column", file=sys.stderr)
        return 2
    group_by = [c for c in args.group_by.split(",") if c]
    shards = _resolve_shards(args.root, args.shards)
    if args.window is not None:
        if not args.ts_column:
            print("--window requires --ts-column", file=sys.stderr)
            return 2
        return _windowed_build(
            args, table, table_name, group_by, value_columns, budget,
            shards,
        )
    if args.ts_column or args.decay is not None or args.retention is not None:
        print(
            "--ts-column/--decay/--retention only apply with --window",
            file=sys.stderr,
        )
        return 2
    if shards > 1:
        from .warehouse import ShardedWarehouseService

        with ShardedWarehouseService(
            args.root, {table_name: table}, shards=shards,
            backend=args.backend, workers="inprocess",
        ) as service:
            report = service.build(
                args.name, table_name, group_by=group_by,
                value_columns=value_columns, budget=budget,
                seed=args.seed,
            )
        suffix = f" across {shards} shards"
    else:
        maintainer = SampleMaintainer(
            SampleStore(args.root, backend=args.backend)
        )
        report = maintainer.build(
            args.name,
            table,
            group_by=group_by,
            value_columns=value_columns,
            budget=budget,
            table_name=table_name,
            seed=args.seed,
        )
        suffix = ""
    print(
        f"built {args.name} {report.version}: {report.rows} rows over "
        f"{report.strata} strata (budget {report.budget}, "
        f"source {report.source_rows} rows, tracking "
        f"{','.join(report.columns)}) -> {args.root}{suffix}"
    )
    return 0


def _windowed_build(
    args, table, table_name, group_by, value_columns, budget, shards
) -> int:
    from .warehouse import format_window, parse_window

    try:
        width = parse_window(args.window)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if shards > 1:
        if args.decay is not None or args.retention is not None:
            print(
                "--decay/--retention are not supported on sharded "
                "stores; rebuild with --shards 1",
                file=sys.stderr,
            )
            return 2
        from .warehouse import ShardedWarehouseService

        with ShardedWarehouseService(
            args.root, {table_name: table}, shards=shards,
            backend=args.backend, workers="inprocess",
        ) as service:
            report = service.build_windowed(
                args.name, table_name, group_by=group_by,
                value_columns=value_columns, budget=budget,
                ts_column=args.ts_column, window=width,
                seed=args.seed,
            )
        suffix = f" across {shards} shards"
    else:
        from .warehouse import WarehouseService

        service = WarehouseService(
            args.root, {table_name: table}, backend=args.backend
        )
        report = service.build_windowed(
            args.name, table_name, group_by=group_by,
            value_columns=value_columns, budget=budget,
            ts_column=args.ts_column, window=width,
            decay=args.decay, retention=args.retention,
            seed=args.seed,
        )
        suffix = ""
    source_rows = sum(w.source_rows for w in report.windows)
    per_window = report.windows[0].budget if report.windows else 0
    print(
        f"built {args.name} windowed by {args.ts_column} "
        f"({format_window(width)}): {len(report.windows)} windows "
        f"starting at {report.starts}, {report.rows} sample rows total "
        f"(budget {per_window}/window, source {source_rows} rows) "
        f"-> {args.root}{suffix}"
    )
    return 0


def _cmd_warehouse_refresh(args) -> int:
    from .warehouse import SampleMaintainer, SampleStore

    batch = Table.load(args.batch)
    full_table = Table.load(args.full_table) if args.full_table else None
    columns = (
        [c for c in args.columns.split(",") if c] if args.columns else None
    )
    shards = _resolve_shards(args.root, args.shards)
    if shards > 1:
        from .warehouse import ShardedSampleStore, ShardedWarehouseService

        tables = {}
        if full_table is not None:
            # The front needs the table under its SQL name to offer the
            # rebuild-escalation path; the stored sample records it.
            stored = ShardedSampleStore(args.root).get_shards(args.name)
            table_name = stored[0].table_name or full_table.name or "T"
            tables[table_name] = full_table
        with ShardedWarehouseService(
            args.root, tables, backend=args.backend, workers="inprocess",
        ) as service:
            report = service.refresh(
                args.name, batch, seed=args.seed, columns=columns
            )
    else:
        store = SampleStore(args.root, backend=args.backend)
        names = set(store.names())
        member_prefix = args.name + "@w"
        if args.name not in names and any(
            n.startswith(member_prefix) for n in names
        ):
            # Windowed family: only the service knows how to roll the
            # member windows forward (the base name has no store entry).
            from .warehouse import WarehouseService

            tables = {}
            if full_table is not None:
                member = min(
                    n for n in names if n.startswith(member_prefix)
                )
                table_name = (
                    store.get(member).table_name or full_table.name or "T"
                )
                tables[table_name] = full_table
            service = WarehouseService(
                args.root, tables, backend=args.backend
            )
            report = service.refresh(
                args.name, batch, seed=args.seed, columns=columns
            )
        else:
            maintainer = SampleMaintainer(store)
            report = maintainer.refresh(
                args.name, batch, full_table=full_table, seed=args.seed,
                columns=columns,
            )
    if report.action == "windowed":
        def _starts(starts):
            return ",".join(str(s) for s in starts) if starts else "-"

        print(
            f"windowed refresh of {args.name} -> {report.version}: "
            f"+{report.rows_ingested} rows; "
            f"opened [{_starts(report.opened)}], "
            f"refreshed [{_starts(report.refreshed)}], "
            f"expired [{_starts(report.expired)}], "
            f"{report.frozen_rows} late rows frozen out of closed windows"
        )
        return 0
    per_column = ", ".join(
        f"{c}={d:.3f}" for c, d in report.drift_by_column.items()
    )
    print(
        f"{report.action} refresh of {args.name} -> {report.version}: "
        f"+{report.rows_ingested} rows (population {report.source_rows}), "
        f"{report.sample_rows} sampled, staleness {report.staleness:.2%}, "
        f"drift {report.drift:.3f}"
        + (f" ({per_column})" if per_column else "")
        + (", NEEDS REBUILD" if report.needs_rebuild else "")
    )
    return 0


def _cmd_warehouse_advise(args) -> int:
    from .warehouse import SampleMaintainer, SampleStore, advise
    from .workload import Workload

    table = Table.load(args.table)
    if args.query_log:
        workload = Workload.from_query_log(args.query_log)
    else:
        workload = Workload.from_log(args.workload)
    if not workload.queries:
        print("workload log contains no queries", file=sys.stderr)
        return 2
    plan = advise(
        workload, table, args.storage_budget, target_cv=args.target_cv
    )
    print(plan.summary())
    if args.materialize:
        if not args.root:
            print("--materialize requires --root", file=sys.stderr)
            return 2
        maintainer = SampleMaintainer(SampleStore(args.root))
        table_name = args.table_name or table.name or "T"
        built = plan.materialize(
            maintainer, table, table_name=table_name, seed=args.seed
        )
        print(f"materialized: {', '.join(built) or '-'}")
    return 0


def _cmd_warehouse_serve(args) -> int:
    from .warehouse import AccuracyContractViolation, WarehouseService

    table = Table.load(args.table)
    table_name = args.table_name or table.name or "T"
    shards = _resolve_shards(args.root, args.shards)
    if shards > 1:
        from .warehouse import ShardedWarehouseService

        service = ShardedWarehouseService(
            args.root, {table_name: table}, backend=args.backend,
            workers=args.shard_workers,
        )
    else:
        service = WarehouseService(
            args.root, {table_name: table}, backend=args.backend
        )
    if args.http:
        return _serve_http(args, service)
    if not args.sql:
        print("provide --sql (one-shot) or --http (server)", file=sys.stderr)
        return 2
    for sql in args.sql:
        try:
            answer = service.query_with_contract(
                sql,
                mode=args.mode,
                max_cv=args.max_cv,
                max_staleness=args.max_staleness,
                on_violation=args.on_violation,
            )
        except AccuracyContractViolation as exc:
            print(f"rejected: {exc}", file=sys.stderr)
            return 4
        contract = answer.contract
        if contract.executed == "approximate":
            print(
                f"routed to {contract.sample_name!r} "
                f"({contract.sample_version}): {contract.reason}"
            )
            print(
                f"contract: predicted CV {contract.predicted_cv:.4f} "
                f"(max group {contract.max_group_cv:.4f}), "
                f"staleness {contract.staleness:.2%}, "
                f"drift {contract.drift:.3f}"
            )
        else:
            print(f"exact execution: {contract.reason}")
        _print_table(answer.table, args.limit)
    return 0


def _serve_http(args, service) -> int:
    """Run the asyncio/HTTP front (and optionally the daemon) until
    interrupted."""
    import asyncio

    from .obs import QueryLog, default_registry
    from .serve import (
        AsyncWarehouseService,
        MaintenanceDaemon,
        WarehouseHTTPServer,
    )

    default_registry().set_enabled(getattr(args, "metrics", True))

    async def amain() -> int:
        async_service = AsyncWarehouseService(
            service,
            max_concurrency=args.max_concurrency,
            max_pending=args.max_pending,
            queue_timeout=args.queue_timeout,
        )
        query_log = None
        if getattr(args, "query_log", None):
            query_log = QueryLog(args.query_log)
            print(f"query log: {args.query_log}")
        server = WarehouseHTTPServer(
            async_service, host=args.host, port=args.port,
            query_log=query_log,
        )
        await server.start()
        daemon = None
        if args.watch:
            daemon = MaintenanceDaemon(
                async_service,
                args.watch,
                sample=args.default_sample,
                poll_interval=args.daemon_interval,
            )
            server.daemon = daemon
            daemon.start()
            print(f"maintenance daemon watching {args.watch}")
        print(
            f"serving on http://{args.host}:{server.port} "
            "(POST /query, GET /samples, GET /stats, GET /healthz, "
            "GET /metrics, GET /debug/traces)",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            if daemon is not None:
                await daemon.stop()
            await server.stop()
            if query_log is not None:
                query_log.close()
        return 0

    try:
        return asyncio.run(amain())
    except KeyboardInterrupt:
        return 0


def _cmd_warehouse_daemon(args) -> int:
    import asyncio

    from .serve import MaintenanceDaemon
    from .warehouse import WarehouseService

    tables = {}
    names = list(args.table_name)
    for i, path in enumerate(args.table):
        loaded = Table.load(path)
        name = names[i] if i < len(names) else (loaded.name or f"T{i}")
        tables[name] = loaded
    shards = _resolve_shards(args.root, args.shards)
    if shards > 1:
        from .warehouse import ShardedWarehouseService

        service = ShardedWarehouseService(
            args.root, tables, backend=args.backend,
            workers=args.shard_workers,
        )
    else:
        service = WarehouseService(args.root, tables, backend=args.backend)
    max_retries = args.max_retries
    if max_retries is None:
        max_retries = 0 if args.once else 3
    daemon = MaintenanceDaemon(
        service,
        args.watch,
        sample=args.sample,
        poll_interval=args.interval,
        require_stable=not args.once,
        max_retries=max_retries,
    )
    listener = None
    if args.metrics_port is not None:
        from .serve import MetricsListener

        listener = MetricsListener(port=args.metrics_port).start()
        print(f"metrics at {listener.url}", flush=True)

    async def amain() -> int:
        if args.once:
            for outcome in await daemon.poll():
                _print_outcome(outcome)
            return 1 if daemon.batches_failed else 0
        daemon.start()
        print(
            f"daemon watching {args.watch} for *.npz batches "
            "(Ctrl-C to stop)",
            flush=True,
        )
        printed = 0
        try:
            while True:
                await asyncio.sleep(min(args.interval, 1.0))
                outcomes = list(daemon.outcomes)
                for outcome in outcomes[printed:]:
                    _print_outcome(outcome)
                printed = len(outcomes)
        finally:
            await daemon.stop()

    try:
        return asyncio.run(amain())
    except KeyboardInterrupt:
        return 0
    finally:
        if listener is not None:
            listener.close()


def _print_outcome(outcome) -> None:
    if outcome.ok:
        print(
            f"applied {outcome.file} -> {outcome.sample} "
            f"{outcome.version} ({outcome.action}, +{outcome.rows} rows, "
            f"{outcome.elapsed_seconds:.2f}s)"
        )
    else:
        print(f"FAILED {outcome.file}: {outcome.error}", file=sys.stderr)


def _cmd_warehouse_stats(args) -> int:
    from .warehouse import SHARD_SCHEME, SampleStore, ShardedSampleStore

    if ShardedSampleStore.is_sharded_root(args.root):
        store = ShardedSampleStore(args.root)
        print(
            f"sharded store: {store.num_shards} shards "
            f"(scheme {SHARD_SCHEME})"
        )
        empty = True
        for index, entries in enumerate(store.stats()):
            print(f"-- shard {index:02d} --")
            if not entries:
                print("(empty)")
                continue
            empty = False
            _print_store_entries(entries)
        if empty:
            print("store is empty")
        return 0
    entries = SampleStore(args.root).stats()
    if not entries:
        print("store is empty")
        return 0
    _print_store_entries(entries)
    return 0


def _print_store_entries(entries) -> None:
    print(
        "name\tversion\tversions\trows\tstrata\tby\tcolumns\tmethod\t"
        "backend\tbytes\tstale"
    )
    for e in entries:
        tracked = list(e.columns.get("tracked") or [])
        primary = e.columns.get("primary")
        shown = [
            (c + "*" if c == primary and len(tracked) > 1 else c)
            for c in tracked
        ]
        print(
            f"{e.name}\t{e.current_version}\t{e.num_versions}\t{e.rows}\t"
            f"{e.strata}\t{','.join(e.by)}\t{','.join(shown) or '-'}\t"
            f"{e.method}\t{e.backend}\t"
            f"{e.bytes_on_disk}\t{e.lineage.get('staleness', 0.0):.2%}"
        )
        for column, summary in (e.columns.get("stats") or {}).items():
            mean_cv = summary.get("mean_data_cv")
            max_cv = summary.get("max_data_cv")
            print(
                f"  column {column}: strata "
                f"{summary.get('populated_strata', 0)}/"
                f"{summary.get('strata', 0)}, data CV mean "
                + (f"{mean_cv:.3f}" if mean_cv is not None else "-")
                + ", max "
                + (f"{max_cv:.3f}" if max_cv is not None else "-")
            )


def _print_table(table: Table, limit: int) -> None:
    names = table.column_names
    print("\t".join(names))
    decoded = {n: table.column(n).decode() for n in names}
    for i in range(min(limit, table.num_rows)):
        row = []
        for n in names:
            value = decoded[n][i]
            if isinstance(value, (float, np.floating)):
                row.append(f"{value:.6g}")
            else:
                row.append(str(value))
        print("\t".join(row))
    if table.num_rows > limit:
        print(f"... ({table.num_rows - limit} more rows)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "sample": _cmd_sample,
        "query": _cmd_query,
        "aqp": _cmd_aqp,
        "experiment": _cmd_experiment,
        "warehouse": _cmd_warehouse,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
