"""CVOPT core: query specs, optimal allocation, samplers, samples."""

from .allocation import (
    allocate,
    box_constrained_allocation,
    integerize,
    lemma1_allocation,
)
from .cvopt import (
    CVOptSampler,
    compute_betas,
    finest_stratification,
    masg_fractional_allocation,
    project_parents,
    sasg_fractional_allocation,
)
from .cvopt_inf import CVOptInfSampler, cvopt_inf_sizes, linf_sizes_from_cv_bounds
from .lp_norm import CVOptLpSampler, lp_fractional_allocation
from .streaming import StreamingCVOptSampler
from .sample import (
    STRATUM_COLUMN,
    WEIGHT_COLUMN,
    Allocation,
    StratifiedSample,
    StratifiedSampler,
)
from .spec import (
    AggregateSpec,
    DerivedColumn,
    GroupByQuerySpec,
    apply_derived_columns,
    specs_from_sql,
)

__all__ = [
    "lemma1_allocation",
    "box_constrained_allocation",
    "integerize",
    "allocate",
    "CVOptSampler",
    "CVOptInfSampler",
    "compute_betas",
    "finest_stratification",
    "project_parents",
    "sasg_fractional_allocation",
    "masg_fractional_allocation",
    "cvopt_inf_sizes",
    "linf_sizes_from_cv_bounds",
    "CVOptLpSampler",
    "lp_fractional_allocation",
    "StreamingCVOptSampler",
    "Allocation",
    "StratifiedSample",
    "StratifiedSampler",
    "WEIGHT_COLUMN",
    "STRATUM_COLUMN",
    "AggregateSpec",
    "GroupByQuerySpec",
    "DerivedColumn",
    "specs_from_sql",
    "apply_derived_columns",
]
