"""Streaming CVOPT (paper Section 8, future-work avenue 3).

The offline algorithm takes two passes: statistics, then the draw. On a
stream neither pass can be repeated, so this module implements a
*pilot + shrink* design (in the spirit of the authors' companion work
on stratified sampling over streams, Nguyen et al., EDBT 2019 [17]):

* **Pilot phase** (the first ``pilot_fraction`` of an expected stream
  length, or an explicit row count): every stratum runs one Welford
  accumulator *per tracked value column* and an over-provisioned
  uniform reservoir (``headroom`` times its fair share of the budget).
* **Re-balance** at the pilot boundary: CVOPT's box-constrained
  allocation is computed from the pilot statistics of **every tracked
  column** (squared data CVs summed per stratum, the Theorem-2
  multi-column objective of :func:`~repro.core.allocation.multi_column_alphas`),
  with each stratum's *current reservoir capacity* as the upper bound. Capacities only **shrink** — shrinking a
  reservoir (uniform subsample, then continue Algorithm R with the
  smaller capacity) preserves exact per-stratum uniformity, whereas
  growing one would bias toward late items.
* **Tail phase**: re-balancing repeats on a doubling schedule (at
  ``pilot_rows``, ``2 * pilot_rows``, ``4 * pilot_rows``, ...) and once
  more at :meth:`finalize`, so strata that first appear late in the
  stream (e.g. clustered input) are folded into the allocation; every
  re-balance is shrink-only, and the budget bound is enforced at each
  one. Statistics keep accumulating so the final Horvitz-Thompson
  weights use exact stream counts.

A sample is typically built to serve *several* aggregate columns, so
the sampler tracks exact per-stratum moments for **every** column in
``value_columns`` (one Welford state each) and emits them all from
:meth:`statistics` — and the re-balance decision combines all of them,
so secondary columns drift no more than the primary between
refreshes. Downstream, the warehouse persists the whole
per-column block so accuracy contracts can predict CVs for whichever
column a query actually aggregates.

The price of one pass is that the allocation is computed from pilot
estimates and capped by the pilot's headroom; accuracy approaches the
two-pass optimum as the pilot grows (tested in
``tests/core/test_streaming.py``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from ..engine.reservoir import Reservoir
from ..engine.schema import DType
from ..engine.statistics import (
    ColumnStats,
    StrataStatistics,
    WelfordAccumulator,
)
from ..engine.table import Column, Table
from .allocation import box_constrained_allocation, integerize
from .sample import STRATUM_COLUMN, WEIGHT_COLUMN, Allocation, StratifiedSample

__all__ = ["StreamingCVOptSampler"]

#: Either one column name or an ordered collection of them.
Columns = Union[str, Sequence[str]]


def _as_columns(value_columns: Columns) -> Tuple[str, ...]:
    if isinstance(value_columns, str):
        return (value_columns,)
    columns = tuple(dict.fromkeys(value_columns))  # dedupe, keep order
    return columns


class _StratumState:
    __slots__ = ("stats", "reservoir", "seen")

    def __init__(
        self,
        columns: Tuple[str, ...],
        capacity: int,
        rng: np.random.Generator,
    ) -> None:
        self.stats: Dict[str, WelfordAccumulator] = {
            column: WelfordAccumulator() for column in columns
        }
        self.reservoir = Reservoir(capacity, rng)
        self.seen = 0


class StreamingCVOptSampler:
    """One-pass CVOPT over a stream of records.

    Parameters
    ----------
    group_by:
        Attribute names forming the stratification key.
    value_columns:
        The aggregation column(s) whose per-stratum moments are
        tracked — a single name or an ordered sequence. Every column
        gets its own Welford state per stratum and appears in
        :meth:`statistics`.
    budget:
        Total rows to retain.
    pilot_rows:
        Stream position at which the allocation is re-balanced.
    headroom:
        Over-provisioning factor for pilot reservoir capacities: each
        newly seen stratum starts with ``headroom * budget /
        max(#strata, 1)`` slots (at least 1).
    primary_column:
        Label for the sample's headline column (default: the first of
        ``value_columns``); re-balancing itself optimizes the combined
        multi-column objective. Must be one of ``value_columns``.
    decay:
        Optional exponential decay in ``(0, 1]`` for recent-biased
        allocation: each :meth:`decay_step` call (issued by the caller
        at its time-window boundaries) scales every stratum's Welford
        mass by this factor, so old data steers re-balancing with
        ``decay**age`` of its original weight. Per-stratum means and
        CVs are unaffected (uniform scaling); reservoir contents,
        populations and Horvitz-Thompson weights stay exact.
    """

    def __init__(
        self,
        group_by: Sequence[str],
        value_columns: Columns,
        budget: int,
        pilot_rows: int,
        headroom: float = 2.0,
        mean_floor: float = 1e-9,
        seed: int | np.random.Generator = 0,
        primary_column: str | None = None,
        decay: float | None = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        if pilot_rows <= 0:
            raise ValueError("pilot_rows must be positive")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self.group_by = tuple(group_by)
        self.value_columns = _as_columns(value_columns)
        if not self.value_columns:
            raise ValueError("need at least one value column")
        self.primary_column = primary_column or self.value_columns[0]
        if self.primary_column not in self.value_columns:
            raise ValueError(
                f"primary column {self.primary_column!r} is not tracked; "
                f"tracked: {', '.join(self.value_columns)}"
            )
        self.budget = int(budget)
        self.pilot_rows = int(pilot_rows)
        self.headroom = float(headroom)
        self.mean_floor = float(mean_floor)
        if decay is not None and not 0.0 < float(decay) <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay) if decay is not None else None
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._strata: Dict[Tuple, _StratumState] = {}
        self._rows_seen = 0
        self._rebalanced = False
        self._next_rebalance = self.pilot_rows
        #: Logical dtype per observed column. Reservoir records are
        #: plain python values; without this the finalized table would
        #: re-infer dtypes and silently downgrade e.g. TIMESTAMP (epoch
        #: ints) to INT64 — breaking schema-sensitive consumers such as
        #: the sliding-window merge, which concats member tables.
        self._column_dtypes: Dict[str, DType] = {}

    @property
    def value_column(self) -> str:
        """Backward-compatible alias: the primary (re-balance) column."""
        return self.primary_column

    # ------------------------------------------------------------------
    # warm start (incremental maintenance)
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        sample: StratifiedSample,
        value_columns: Columns,
        statistics: StrataStatistics | None = None,
        headroom: float = 2.0,
        mean_floor: float = 1e-9,
        seed: int | np.random.Generator = 0,
        primary_column: str | None = None,
        decay: float | None = None,
    ) -> "StreamingCVOptSampler":
        """Warm-start a streaming sampler from a materialized sample.

        Within stratum ``c`` the existing sample is an SRS of size
        ``s_c`` from ``n_c`` rows — exactly the state of Algorithm R
        after ``n_c`` offers — so seeding each reservoir with the stored
        rows and ``seen = n_c`` and continuing the stream yields a valid
        SRS over the *extended* population. Re-balancing stays
        shrink-only: a stratum's capacity starts at its current size.

        ``statistics`` supplies exact per-stratum moments of the
        tracked columns over the full population (pass-1 output,
        persisted by the warehouse). Each tracked column whose moments
        are present is restored exactly; a column absent from the
        statistics is estimated from the sample rows, scaled to the
        stratum population — good enough to drive the allocation, and
        replaced by exact moments at the next full rebuild.
        """
        stats = statistics if statistics is not None else sample.allocation.stats
        allocation = sample.allocation
        sampler = cls(
            group_by=allocation.by,
            value_columns=value_columns,
            budget=sample.budget,
            pilot_rows=max(1, sample.source_rows),
            headroom=headroom,
            mean_floor=mean_floor,
            seed=seed,
            primary_column=primary_column,
            decay=decay,
        )
        table = sample.table
        gids = (
            table.column(STRATUM_COLUMN).data.astype(np.int64)
            if STRATUM_COLUMN in table
            else np.zeros(table.num_rows, dtype=np.int64)
        )
        payload = table.without_columns([WEIGHT_COLUMN, STRATUM_COLUMN])
        sampler._note_dtypes(payload)
        decoded = {n: payload.column(n).decode() for n in payload.column_names}
        rows_by_stratum: Dict[int, list] = {}
        for i in range(payload.num_rows):
            rows_by_stratum.setdefault(int(gids[i]), []).append(
                {n: decoded[n][i] for n in payload.column_names}
            )
        col_stats: Dict[str, ColumnStats | None] = {
            column: (
                stats.stats_for(column)
                if stats is not None and column in stats.columns
                else None
            )
            for column in sampler.value_columns
        }
        for idx, key in enumerate(allocation.keys):
            population = int(allocation.populations[idx])
            items = rows_by_stratum.get(idx, [])
            state = _StratumState(
                sampler.value_columns, len(items), sampler._rng
            )
            state.reservoir._items = items
            state.reservoir._seen = population
            state.seen = population
            for column, cs in col_stats.items():
                acc = state.stats[column]
                if cs is not None:
                    _restore_welford(
                        acc,
                        population,
                        float(cs.total[idx]),
                        float(cs.total_sq[idx]),
                    )
                else:
                    for row in items:
                        acc.add(float(row[column]))
                    # Scale sample moments to the population so the CV
                    # math weighs this stratum like pass-1 statistics
                    # would.
                    if items:
                        factor = population / len(items)
                        acc.count = population
                        acc.m2 *= factor
            sampler._strata[tuple(key)] = state
        sampler._rows_seen = sample.source_rows
        sampler._rebalanced = True
        sampler._next_rebalance = max(2 * sample.source_rows, 1)
        return sampler

    # ------------------------------------------------------------------
    # streaming API
    # ------------------------------------------------------------------
    @property
    def rows_seen(self) -> int:
        return self._rows_seen

    @property
    def rebalanced(self) -> bool:
        return self._rebalanced

    def observe(self, record: Mapping[str, object]) -> None:
        """Feed one stream record (a mapping with the key + value
        attributes; extra attributes are retained in the sample)."""
        key = tuple(record[attr] for attr in self.group_by)
        state = self._strata.get(key)
        if state is None:
            capacity = max(
                1,
                int(
                    self.headroom
                    * self.budget
                    / max(len(self._strata) + 1, 1)
                ),
            )
            state = _StratumState(self.value_columns, capacity, self._rng)
            self._strata[key] = state
        state.seen += 1
        for column in self.value_columns:
            state.stats[column].add(float(record[column]))
        state.reservoir.offer(dict(record))
        self._rows_seen += 1
        if self._rows_seen >= self._next_rebalance:
            self._rebalance()
            self._next_rebalance = max(
                self._next_rebalance * 2, self._rows_seen + 1
            )

    def observe_table(self, table: Table) -> None:
        """Convenience: stream a Table row by row (tests, examples)."""
        self._note_dtypes(table)
        for row in table.iter_rows():
            self.observe(row)

    def _note_dtypes(self, table: Table) -> None:
        """Remember each column's logical dtype so the finalized
        reservoir table round-trips the schema instead of re-inferring
        it from python values."""
        for name in table.column_names:
            self._column_dtypes[name] = table.column(name).dtype

    def decay_step(self, factor: float | None = None) -> None:
        """Apply one exponential-decay step to every stratum's moments.

        The caller decides what a "step" is — typically one tumbling
        window rolling over. Scaling is uniform per stratum
        (:meth:`WelfordAccumulator.scale`), so per-stratum means and CVs
        are preserved exactly; only the relative mass of old
        observations in the next re-balance shrinks.
        """
        factor = self.decay if factor is None else float(factor)
        if factor is None:
            raise ValueError("no decay factor configured or given")
        for state in self._strata.values():
            for acc in state.stats.values():
                acc.scale(factor)

    # ------------------------------------------------------------------
    # re-balancing
    # ------------------------------------------------------------------
    def rebalance(self) -> None:
        """Force a shrink-only re-balance now (batch maintenance)."""
        self._rebalance()

    def _rebalance(self) -> None:
        self._rebalanced = True
        keys = list(self._strata)
        if not keys:
            return
        # Combined multi-column objective (Theorem 2 summed across the
        # tracked columns, mirroring ``allocation.multi_column_alphas``):
        # alpha_c = sum over columns of that column's squared data CV,
        # each column floored independently so a near-zero-mean column
        # cannot blow up the whole allocation.
        alphas = np.zeros(len(keys), dtype=np.float64)
        for column in self.value_columns:
            means = np.asarray(
                [abs(self._strata[k].stats[column].mean) for k in keys]
            )
            stds = np.asarray(
                [self._strata[k].stats[column].std for k in keys]
            )
            finite = means[means > 0]
            floor = (
                self.mean_floor * float(finite.max()) if len(finite) else 1.0
            )
            means = np.maximum(means, max(floor, 1e-300))
            alphas += (stds / means) ** 2

        capacities = np.asarray(
            [self._strata[k].reservoir.capacity for k in keys],
            dtype=np.float64,
        )
        lower = np.minimum(1.0, capacities)
        target = box_constrained_allocation(
            alphas, self.budget, lower, capacities
        )
        sizes = integerize(
            target, self.budget, capacities.astype(np.int64)
        )
        for key, new_capacity in zip(keys, sizes):
            self._shrink(self._strata[key], int(new_capacity))

    def _shrink(self, state: _StratumState, new_capacity: int) -> None:
        """Shrink-only resize preserving within-stratum uniformity."""
        reservoir = state.reservoir
        if new_capacity >= reservoir.capacity:
            return  # growing would bias toward late items; keep as is
        items = reservoir.sample()
        if len(items) > new_capacity:
            picked = self._rng.choice(
                len(items), size=new_capacity, replace=False
            )
            items = [items[i] for i in picked]
        fresh = Reservoir(new_capacity, self._rng)
        fresh._items = items
        fresh._seen = reservoir.seen
        state.reservoir = fresh

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def statistics(self) -> StrataStatistics:
        """Stream statistics of every tracked column, per stratum.

        Keys are aligned with :meth:`finalize`'s allocation, so the
        result can be persisted next to the sample and handed back to
        :meth:`resume` for the next maintenance round. Moments are
        exact over the whole observed stream (warm-start population
        included), per column.
        """
        keys = list(self._strata)
        sizes = np.asarray(
            [self._strata[k].seen for k in keys], dtype=np.int64
        )
        stats = StrataStatistics(
            by=self.group_by,
            keys=keys,
            sizes=sizes,
        )
        for column in self.value_columns:
            counts = np.asarray(
                [self._strata[k].stats[column].count for k in keys],
                dtype=np.float64,
            )
            means = np.asarray(
                [self._strata[k].stats[column].mean for k in keys],
                dtype=np.float64,
            )
            m2s = np.asarray(
                [self._strata[k].stats[column].m2 for k in keys],
                dtype=np.float64,
            )
            totals = means * counts
            totals_sq = m2s + counts * means**2
            stats.columns[column] = ColumnStats(
                count=counts, total=totals, total_sq=totals_sq
            )
        return stats

    def finalize(self) -> StratifiedSample:
        """Materialize the retained rows as a StratifiedSample."""
        if self._strata:
            self._rebalance()  # fold in strata seen since the last one
        keys = list(self._strata)
        populations = np.asarray(
            [self._strata[k].seen for k in keys], dtype=np.int64
        )
        rows: list = []
        strata_ids: list = []
        sizes = np.zeros(len(keys), dtype=np.int64)
        for idx, key in enumerate(keys):
            sample_rows = self._strata[key].reservoir.sample()
            sizes[idx] = len(sample_rows)
            rows.extend(sample_rows)
            strata_ids.extend([idx] * len(sample_rows))
        table = self._rows_to_table(rows)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                sizes > 0, populations / np.maximum(sizes, 1), 0.0
            )
        gids = np.asarray(strata_ids, dtype=np.int64)
        weights = scale[gids] if len(gids) else np.zeros(0)
        table = table.with_column(
            WEIGHT_COLUMN, Column(DType.FLOAT64, weights.astype(np.float64))
        )
        table = table.with_column(
            STRATUM_COLUMN, Column(DType.INT64, gids)
        )
        allocation = Allocation(
            by=self.group_by,
            keys=keys,
            populations=populations,
            sizes=sizes,
            stats=self.statistics(),
        )
        return StratifiedSample(
            table=table,
            allocation=allocation,
            method="CVOPT-STREAM",
            source_rows=self._rows_seen,
            budget=self.budget,
        )

    def _rows_to_table(self, rows: Sequence[Mapping[str, object]]) -> Table:
        if not rows:
            return Table({})
        columns = list(rows[0].keys())
        return Table(
            {
                name: Column.from_values(
                    [row[name] for row in rows],
                    self._column_dtypes.get(name),
                )
                for name in columns
            }
        )


def _restore_welford(
    acc: WelfordAccumulator, count: int, total: float, total_sq: float
) -> None:
    """Rebuild a Welford state from additive moments (store round-trip)."""
    acc.count = int(count)
    acc.mean = total / count if count else 0.0
    acc.m2 = max(total_sq - count * acc.mean**2, 0.0) if count else 0.0
