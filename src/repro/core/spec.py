"""Query specifications driving sample construction.

A :class:`GroupByQuerySpec` describes one group-by query the sample
should be optimized for: the grouping attributes ``A_i``, the aggregated
columns ``L_i``, and the weights ``w``. The paper's weight model assigns
one weight per *result cell* — per (group, aggregate) pair — with
defaults of 1; we expose that as three multiplicative layers:

``effective_weight(a, l) = query.weight * aggregate.weight
                          * group_weights.get(a, 1) * cell_weights.get((a, l), 1)``

Specs can be derived from SQL (:func:`specs_from_sql`): group-by columns
become ``A_i``; ``AVG``/``SUM``/``MEDIAN``/... arguments become
aggregation columns; ``COUNT_IF(cond)`` and other computed aggregate
arguments become *derived columns* (indicator / expression columns added
to the table before statistics collection); ``COUNT(*)`` contributes a
constant column with zero variance — it never needs samples of its own,
exactly as the paper notes for COUNT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from ..engine.expr import (
    AggCall,
    ColumnRef,
    Expr,
    Literal,
    Star,
    collect_agg_calls,
)
from ..engine.sql.ast import SelectQuery, SubqueryTable
from ..engine.sql.parser import parse_query
from ..engine.table import Table
from ..engine.expr import evaluate

import numpy as np

__all__ = [
    "AggregateSpec",
    "GroupByQuerySpec",
    "DerivedColumn",
    "specs_from_sql",
    "apply_derived_columns",
]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregation column and its weight."""

    column: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("aggregate weight must be non-negative")


@dataclass(frozen=True)
class GroupByQuerySpec:
    """One group-by query in the optimization target."""

    group_by: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    weight: float = 1.0
    group_weights: Optional[Mapping[tuple, float]] = None
    cell_weights: Optional[Mapping[tuple, float]] = None  # (group, column)

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", tuple(self.group_by))
        aggs = tuple(
            a if isinstance(a, AggregateSpec) else AggregateSpec(a)
            for a in self.aggregates
        )
        object.__setattr__(self, "aggregates", aggs)
        if not aggs:
            raise ValueError("a query spec needs at least one aggregate")
        if self.weight < 0:
            raise ValueError("query weight must be non-negative")

    @classmethod
    def single(
        cls, column: str, by: Sequence[str], weight: float = 1.0
    ) -> "GroupByQuerySpec":
        """Convenience for the SASG case: one aggregate, one grouping."""
        return cls(
            group_by=tuple(by),
            aggregates=(AggregateSpec(column),),
            weight=weight,
        )

    @property
    def agg_columns(self) -> Tuple[str, ...]:
        return tuple(a.column for a in self.aggregates)

    def effective_weight(self, group_key: tuple, agg: AggregateSpec) -> float:
        w = self.weight * agg.weight
        if self.group_weights:
            w *= self.group_weights.get(group_key, 1.0)
        if self.cell_weights:
            w *= self.cell_weights.get((group_key, agg.column), 1.0)
        return w

    def reweighted(
        self, aggregate_weights: Sequence[float]
    ) -> "GroupByQuerySpec":
        """Copy with new per-aggregate weights (Figure 2 experiments)."""
        if len(aggregate_weights) != len(self.aggregates):
            raise ValueError(
                f"expected {len(self.aggregates)} weights, "
                f"got {len(aggregate_weights)}"
            )
        aggs = tuple(
            AggregateSpec(a.column, float(w))
            for a, w in zip(self.aggregates, aggregate_weights)
        )
        return GroupByQuerySpec(
            group_by=self.group_by,
            aggregates=aggs,
            weight=self.weight,
            group_weights=self.group_weights,
            cell_weights=self.cell_weights,
        )


@dataclass(frozen=True)
class DerivedColumn:
    """A column computed from an expression before statistics collection.

    Produced when an aggregate argument is not a plain column —
    ``COUNT_IF(value > 0.04)`` yields an indicator column, ``COUNT(*)``
    a constant-one column.
    """

    name: str
    expr: Expr


def apply_derived_columns(table: Table, derived: Sequence[DerivedColumn]) -> Table:
    """Materialize derived columns onto ``table`` (idempotent)."""
    from ..engine.table import Column
    from ..engine.schema import DType

    for dc in derived:
        if dc.name in table:
            continue
        if isinstance(dc.expr, Star):
            data = np.ones(table.num_rows, dtype=np.float64)
        else:
            data = np.asarray(evaluate(dc.expr, table), dtype=np.float64)
        table = table.with_column(dc.name, Column(DType.FLOAT64, data))
    return table


def specs_from_sql(sql: str, weight: float = 1.0):
    """Derive ``(specs, derived_columns)`` from a SQL query.

    Handles plain group-by queries and the paper's AQ1 pattern (CTEs over
    the same base table): every SELECT block with a GROUP BY contributes
    one spec. Selection predicates are ignored — the sample is built
    before predicates are known (paper Section 6: predicates are applied
    on the sample at query time).
    """
    query = parse_query(sql)
    specs: list = []
    derived: list = []
    counter = [0]
    _walk_query(query, weight, specs, derived, counter)
    if not specs:
        raise ValueError(
            "query has no GROUP BY aggregation to optimize a sample for"
        )
    return specs, derived


def _walk_query(query: SelectQuery, weight, specs, derived, counter) -> None:
    for _, cte in query.ctes:
        _walk_query(cte, weight, specs, derived, counter)
    from_clause = query.from_clause
    if isinstance(from_clause, SubqueryTable):
        _walk_query(from_clause.query, weight, specs, derived, counter)
    if not query.group_by and not query.is_aggregate:
        return
    group_cols = []
    for expr in query.group_by:
        if isinstance(expr, ColumnRef):
            group_cols.append(expr.name.split(".")[-1])
        else:
            # Computed keys (e.g. CONCAT(month,'_',year)) depend on the
            # columns they reference — stratify on those.
            from ..engine.expr import collect_column_refs

            group_cols.extend(
                r.name.split(".")[-1] for r in collect_column_refs(expr)
            )
    if not group_cols:
        return

    aggs = []
    for item in query.items:
        for call in collect_agg_calls(item.expr):
            agg = _aggregate_spec_for(call, derived, counter)
            if agg is not None:
                aggs.append(agg)
    if not aggs:
        return
    # Deduplicate by column, keep order.
    seen = set()
    unique_aggs = []
    for agg in aggs:
        if agg.column not in seen:
            seen.add(agg.column)
            unique_aggs.append(agg)
    group_cols = tuple(dict.fromkeys(group_cols))
    if query.with_cube:
        # WITH CUBE is a collection of group-bys: one spec per grouping
        # set (paper Section 4.1, "Cube-By Queries"), including the
        # grand total (empty grouping).
        from ..engine.groupby import cube_grouping_sets

        for subset in cube_grouping_sets(group_cols):
            specs.append(
                GroupByQuerySpec(
                    group_by=subset,
                    aggregates=tuple(unique_aggs),
                    weight=weight,
                )
            )
    else:
        specs.append(
            GroupByQuerySpec(
                group_by=group_cols,
                aggregates=tuple(unique_aggs),
                weight=weight,
            )
        )


def _aggregate_spec_for(call: AggCall, derived, counter):
    if isinstance(call.arg, Star) or call.arg is None:
        # COUNT(*): constant column, zero variance.
        name = "__const_one"
        if all(d.name != name for d in derived):
            derived.append(DerivedColumn(name, Star()))
        return AggregateSpec(name)
    if isinstance(call.arg, ColumnRef):
        return AggregateSpec(call.arg.name.split(".")[-1])
    if isinstance(call.arg, Literal):
        return None
    name = f"__derived_{counter[0]}"
    counter[0] += 1
    derived.append(DerivedColumn(name, call.arg))
    return AggregateSpec(name)
