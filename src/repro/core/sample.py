"""Stratified sample container and the sampler base class.

A :class:`StratifiedSample` holds the sampled rows plus everything
needed to answer queries: the stratification attributes, per-stratum
populations and sample sizes, and per-row Horvitz-Thompson weights
(``n_c / s_c``). The sample is *reusable*: any query over the base
table's columns — new predicates, new grouping combinations — runs
against it via weighted execution (paper Section 6.3).

:class:`StratifiedSampler` is the shared skeleton for CVOPT and every
baseline: subclasses implement :meth:`allocation` (statistics pass +
budget split); the base class draws the per-stratum SRS and assembles
the sample (second pass), mirroring the paper's two-pass offline phase.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..engine.groupby import compute_group_keys
from ..engine.reservoir import stratified_sample_indices
from ..engine.schema import DType
from ..engine.sql.executor import execute_sql
from ..engine.statistics import StrataStatistics
from ..engine.table import Column, Table

__all__ = [
    "WEIGHT_COLUMN",
    "STRATUM_COLUMN",
    "Allocation",
    "StratifiedSample",
    "StratifiedSampler",
]

#: Reserved column names added to sample tables.
WEIGHT_COLUMN = "__weight__"
STRATUM_COLUMN = "__stratum__"


@dataclass
class Allocation:
    """A budget split over a stratification of the table."""

    by: Tuple[str, ...]  # stratification attributes (empty = one stratum)
    keys: list  # decoded key tuple per stratum
    populations: np.ndarray  # n_c (int64)
    sizes: np.ndarray  # s_c (int64)
    scores: Optional[np.ndarray] = None  # beta_c / alpha_c, for diagnostics
    #: Pass-1 per-stratum statistics (aligned with ``keys``), when the
    #: sampler kept them. The warehouse persists these so incremental
    #: maintenance can merge appended batches without a full rescan.
    stats: Optional["StrataStatistics"] = None

    def __post_init__(self) -> None:
        self.populations = np.asarray(self.populations, dtype=np.int64)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        if len(self.keys) != len(self.populations) or len(self.keys) != len(
            self.sizes
        ):
            raise ValueError("keys, populations and sizes must align")
        if np.any(self.sizes > self.populations):
            raise ValueError("allocation exceeds a stratum population")
        if np.any(self.sizes < 0):
            raise ValueError("allocation must be non-negative")

    @property
    def num_strata(self) -> int:
        return len(self.keys)

    @property
    def total(self) -> int:
        return int(self.sizes.sum())


class StratifiedSample:
    """Materialized stratified sample with estimation metadata."""

    def __init__(
        self,
        table: Table,
        allocation: Allocation,
        method: str,
        source_rows: int,
        budget: int,
    ) -> None:
        self.table = table
        self.allocation = allocation
        self.method = method
        self.source_rows = source_rows
        self.budget = budget

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def sampling_rate(self) -> float:
        if self.source_rows == 0:
            return 0.0
        return self.num_rows / self.source_rows

    def answer(self, sql: str, table_name: str) -> Table:
        """Approximately answer ``sql`` with this sample standing in for
        the base table named ``table_name``."""
        return execute_sql(
            sql, {table_name: self.table}, weight_column=WEIGHT_COLUMN
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        meta = Table.from_pydict(
            {
                "stratum": list(range(self.allocation.num_strata)),
                "population": self.allocation.populations,
                "size": self.allocation.sizes,
                "key": [repr(k) for k in self.allocation.keys],
            }
        )
        payload_path = str(path)
        self.table.save(payload_path + ".rows.npz")
        meta.save(payload_path + ".meta.npz")

    def __repr__(self) -> str:
        return (
            f"StratifiedSample(method={self.method}, rows={self.num_rows}, "
            f"strata={self.allocation.num_strata}, "
            f"rate={self.sampling_rate:.4%})"
        )


class StratifiedSampler(abc.ABC):
    """Base class: two-pass sample construction.

    Pass 1 (:meth:`allocation`): scan for statistics and split the
    budget. Pass 2 (:meth:`sample`): draw an SRS without replacement of
    the allocated size inside each stratum and attach HT weights.
    """

    #: Display name used in experiment tables.
    name: str = "stratified"

    @abc.abstractmethod
    def allocation(self, table: Table, budget: int) -> Allocation:
        """Split ``budget`` rows over a stratification of ``table``."""

    def prepare(self, table: Table) -> Table:
        """Hook: materialize derived columns etc. before both passes."""
        return table

    def sample(
        self,
        table: Table,
        budget: int,
        seed: int | np.random.Generator = 0,
    ) -> StratifiedSample:
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        if budget <= 0:
            raise ValueError("budget must be positive")
        table = self.prepare(table)
        allocation = self.allocation(table, budget)
        keys = compute_group_keys(table, allocation.by)
        if keys.num_groups != allocation.num_strata:
            raise RuntimeError(
                "allocation strata do not match the table stratification"
            )
        indices = stratified_sample_indices(keys.gids, allocation.sizes, rng)
        sampled = table.take(indices)

        gids = keys.gids[indices]
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                allocation.sizes > 0,
                allocation.populations / np.maximum(allocation.sizes, 1),
                0.0,
            )
        weights = scale[gids]
        sampled = sampled.with_column(
            WEIGHT_COLUMN, Column(DType.FLOAT64, weights.astype(np.float64))
        )
        sampled = sampled.with_column(
            STRATUM_COLUMN, Column(DType.INT64, gids.astype(np.int64))
        )
        return StratifiedSample(
            table=sampled,
            allocation=allocation,
            method=self.name,
            source_rows=table.num_rows,
            budget=budget,
        )

    def sample_rate(
        self,
        table: Table,
        rate: float,
        seed: int | np.random.Generator = 0,
    ) -> StratifiedSample:
        """Draw a sample of ``rate`` (e.g. 0.01 for the paper's 1%)."""
        if not 0 < rate <= 1:
            raise ValueError("rate must be in (0, 1]")
        budget = max(1, int(round(table.num_rows * rate)))
        return self.sample(table, budget, seed)
