"""General l-p norm allocation (paper Section 8, future-work avenue 2).

The paper optimizes the l2 norm (Lemma 1's closed form) and l-infinity
(Section 5) of the per-group CVs, and asks about other norms. For a
single group-by, the l-p objective is

    minimize  sum_i w_i * CV_i(s_i)^p
    where     CV_i(s) = c_i * sqrt(1/s - 1/n_i),   c_i = sigma_i / mu_i

subject to the budget and box constraints. For ``p >= 2`` each term is
convex in ``s_i`` (the composition of the convex decreasing
``1/s - 1/n`` with the convex increasing ``t^(p/2)``), so the KKT
conditions characterize the optimum: the marginal gains

    g_i(s) = (p/2) * w_i c_i^p * (1/s - 1/n_i)^(p/2 - 1) / s^2

are equalized at a level ``lambda``; ``g_i`` is strictly decreasing in
``s`` for ``p >= 2``, so each ``s_i(lambda)`` is found by inner
bisection and the budget by outer bisection on ``lambda``.

``p = 2`` reproduces Lemma 1's closed form exactly (with the
finite-population correction dropping out of the optimality condition);
``p -> infinity`` approaches the CVOPT-INF equalization. ``p < 2``
breaks convexity of the composition and is rejected.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.statistics import collect_strata_statistics
from ..engine.groupby import compute_group_keys
from ..engine.table import Table
from .allocation import integerize
from .sample import Allocation, StratifiedSampler
from .spec import DerivedColumn, GroupByQuerySpec, apply_derived_columns

__all__ = ["lp_fractional_allocation", "CVOptLpSampler"]


def _marginal(s, coeff, populations, p):
    """g_i(s) for vectorized s (one stratum at a time)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        slack = 1.0 / s - 1.0 / populations
        return (p / 2.0) * coeff * slack ** (p / 2.0 - 1.0) / s**2


def lp_fractional_allocation(
    cvs: np.ndarray,
    populations: np.ndarray,
    budget: float,
    p: float = 2.0,
    weights: np.ndarray | None = None,
    min_per_stratum: float = 0.0,
) -> np.ndarray:
    """Fractional l-p-optimal sizes for one grouping.

    ``cvs[i] = sigma_i / mu_i`` is the data CV of stratum ``i``.
    Strata with zero CV receive only the floor. Returns real-valued
    sizes summing to ``min(budget, sum populations)`` (up to bisection
    tolerance).
    """
    if p < 2:
        raise ValueError(
            "lp allocation requires p >= 2 (the per-stratum objective "
            "is non-convex below 2); use CVOPT-INF for the maximum"
        )
    cvs = np.asarray(cvs, dtype=np.float64)
    populations = np.asarray(populations, dtype=np.float64)
    if weights is None:
        weights = np.ones_like(cvs)
    weights = np.asarray(weights, dtype=np.float64)
    r = len(cvs)
    if r == 0:
        return np.zeros(0)

    lower = np.minimum(min_per_stratum, populations)
    upper = populations
    budget = float(np.clip(budget, lower.sum(), upper.sum()))

    coeff = weights * np.where(cvs > 0, cvs, 0.0) ** p
    active = coeff > 0

    def size_for_lambda(lam: float) -> np.ndarray:
        sizes = lower.copy()
        for i in np.flatnonzero(active):
            n_i = populations[i]
            lo, hi = 1e-9, n_i * (1 - 1e-12)
            if _marginal(hi, coeff[i], n_i, p) >= lam:
                s = hi  # even a census has marginal gain above lambda
            elif _marginal(lo, coeff[i], n_i, p) <= lam:
                s = lo
            else:
                for _ in range(80):
                    mid = np.sqrt(lo * hi)
                    if _marginal(mid, coeff[i], n_i, p) > lam:
                        lo = mid
                    else:
                        hi = mid
                s = hi
            sizes[i] = np.clip(s, lower[i], upper[i])
        return sizes

    # Outer bisection on lambda: total allocated size is decreasing.
    lam_lo, lam_hi = 1e-30, 1e30
    if size_for_lambda(lam_lo).sum() <= budget:
        return size_for_lambda(lam_lo)
    if size_for_lambda(lam_hi).sum() >= budget:
        return size_for_lambda(lam_hi)
    for _ in range(120):
        lam_mid = np.sqrt(lam_lo * lam_hi)
        if size_for_lambda(lam_mid).sum() > budget:
            lam_lo = lam_mid
        else:
            lam_hi = lam_mid
    sizes = size_for_lambda(lam_hi)
    # Distribute the residual budget over unclamped strata.
    slack = budget - sizes.sum()
    if abs(slack) > 1e-6:
        room = (upper - sizes) if slack > 0 else (sizes - lower)
        movable = room > 1e-9
        if movable.any():
            sizes[movable] += slack * room[movable] / room[movable].sum()
            sizes = np.clip(sizes, lower, upper)
    return sizes


class CVOptLpSampler(StratifiedSampler):
    """CVOPT generalized to the l-p norm of the CVs (single group-by).

    ``p = 2`` coincides with :class:`CVOptSampler` on SASG/MASG specs;
    larger ``p`` penalizes the worst groups harder, interpolating toward
    CVOPT-INF.
    """

    def __init__(
        self,
        specs,
        p: float = 2.0,
        min_per_stratum: int = 1,
        mean_floor: float = 1e-9,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if len(self.specs) != 1:
            raise NotImplementedError(
                "l-p allocation is implemented for a single group-by "
                "clause; multiple group-bys couple the strata and need "
                "a general convex solver"
            )
        if p < 2:
            raise ValueError("p must be >= 2")
        self.p = float(p)
        self.min_per_stratum = int(min_per_stratum)
        self.mean_floor = float(mean_floor)
        self.derived = tuple(derived)
        self.name = f"CVOPT-L{p:g}"

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        spec = self.specs[0]
        keys = compute_group_keys(table, spec.group_by)
        stats = collect_strata_statistics(
            table, spec.group_by, spec.agg_columns, keys=keys
        )
        # Multiple aggregates: per-stratum coefficient is the weighted
        # l-p combination of the per-aggregate CVs, which keeps each
        # stratum's term of the same separable form.
        combined = np.zeros(stats.num_strata)
        for agg in spec.aggregates:
            cs = stats.stats_for(agg.column)
            cv = np.nan_to_num(cs.cv(mean_floor=self.mean_floor))
            group_w = np.asarray(
                [
                    spec.effective_weight(stats.keys[i], agg)
                    for i in range(stats.num_strata)
                ]
            )
            combined += group_w * cv**self.p
        effective_cv = combined ** (1.0 / self.p)
        fractional = lp_fractional_allocation(
            effective_cv,
            stats.sizes,
            budget,
            p=self.p,
            min_per_stratum=self.min_per_stratum,
        )
        sizes = integerize(fractional, budget, stats.sizes)
        return Allocation(
            by=stats.by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
            scores=effective_cv,
        )
