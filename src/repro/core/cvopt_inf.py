"""CVOPT-INF: minimizing the l-infinity norm (maximum) of the CVs.

Paper Section 5. At the optimum all per-group CVs are equal (Lemma 4),
which yields the closed form ``x_i / (n_i - x_i) = q * d_i / D`` with
``d_i = (sigma_i / mu_i)^2 / n_i``. The algorithm binary-searches the
largest integer ``q`` whose induced total ``sum x_i(q)`` fits the budget
(O(r log n)), then rounds up: ``s_i = ceil(x_i / sum x_j * M)``.

The paper evaluates CVOPT-INF on SASG queries only; we additionally
provide an exact l-infinity allocator for MASG (one grouping, many
aggregates) by bisecting the target CV ``t`` — per-stratum constraints
are separable there, so ``s_i(t) = n_i m_i^2 / (m_i^2 + n_i t^2)`` with
``m_i = max_j sqrt(w_ij) sigma_ij / mu_ij``, and the budget is monotone
in ``t``. Multiple group-bys under l-infinity are not covered by the
paper's algorithm and raise ``NotImplementedError``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.statistics import collect_strata_statistics
from ..engine.groupby import compute_group_keys
from ..engine.table import Table
from .sample import Allocation, StratifiedSampler
from .spec import (
    DerivedColumn,
    GroupByQuerySpec,
    apply_derived_columns,
    specs_from_sql,
)

__all__ = [
    "cvopt_inf_sizes",
    "linf_sizes_from_cv_bounds",
    "CVOptInfSampler",
]


def cvopt_inf_sizes(
    populations: np.ndarray,
    means: np.ndarray,
    stds: np.ndarray,
    budget: int,
    weights: np.ndarray | None = None,
    min_per_stratum: int = 1,
    mean_floor: float = 1e-9,
) -> np.ndarray:
    """The paper's SASG l-infinity algorithm (Section 5).

    Returns integer sizes; per the paper the ceil-rounding may exceed
    the nominal budget by at most one row per stratum, and sizes are
    capped at the stratum populations.
    """
    populations = np.asarray(populations, dtype=np.int64)
    means = np.abs(np.asarray(means, dtype=np.float64))
    stds = np.asarray(stds, dtype=np.float64)
    if weights is None:
        weights = np.ones_like(stds)
    weights = np.asarray(weights, dtype=np.float64)
    if budget <= 0:
        raise ValueError("budget must be positive")

    finite = means[np.isfinite(means) & (means > 0)]
    if len(finite) == 0:
        raise ValueError("all stratum means are zero; CVs undefined")
    means = np.maximum(means, mean_floor * float(finite.max()))

    # sigma = 0 strata are special-cased (paper: "no need to maintain a
    # sample of that group"); they are excluded from the equalization and
    # only receive the representation floor.
    cv_sq = weights * (stds / means) ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        d = np.where(populations > 0, cv_sq / populations, 0.0)
    total_d = d.sum()
    n_total = int(populations.sum())
    if total_d == 0:
        sizes = np.zeros(len(populations), dtype=np.int64)
        return np.minimum(
            np.maximum(sizes, min(min_per_stratum, budget)), populations
        )

    ratio = d / total_d

    def total_for(q: float) -> float:
        x = (q * ratio) / (1.0 + q * ratio) * populations
        return float(x.sum())

    lo, hi = 0, max(n_total, 1)
    if total_for(hi) <= budget:
        q = float(hi)
    else:
        while lo < hi:  # largest integer q with total_for(q) <= budget
            mid = (lo + hi + 1) // 2
            if total_for(mid) <= budget:
                lo = mid
            else:
                hi = mid - 1
        # The paper stops at the integer q (using q=1 when the search
        # returns 0). A unit-integer grid is too coarse when the budget
        # is small relative to the heterogeneity (q* < 1 breaks Lemma
        # 4's equalization badly), so we refine q within [lo, lo+1) by
        # continuous bisection — same closed form, exact budget fit.
        q_lo, q_hi = float(lo), float(lo + 1)
        for _ in range(100):
            mid = 0.5 * (q_lo + q_hi)
            if total_for(mid) <= budget:
                q_lo = mid
            else:
                q_hi = mid
        q = q_lo
    if q <= 0:
        q = 1.0

    x = (q * ratio) / (1.0 + q * ratio) * populations
    total_x = x.sum()
    if total_x <= 0:
        raise RuntimeError("degenerate l-infinity allocation")
    sizes = np.ceil(x / total_x * budget).astype(np.int64)
    sizes = np.minimum(sizes, populations)
    sizes = np.maximum(sizes, np.minimum(min_per_stratum, populations))
    return sizes


def linf_sizes_from_cv_bounds(
    populations: np.ndarray,
    cv_per_stratum: np.ndarray,
    budget: int,
    min_per_stratum: int = 1,
) -> np.ndarray:
    """Exact l-infinity allocation by bisection on the target CV ``t``.

    ``cv_per_stratum[i]`` is the (weighted) worst-case data CV
    ``m_i = max_j sqrt(w_ij) sigma_ij / mu_ij``. Making group ``i``'s
    estimate CV at most ``t`` requires
    ``s_i >= n_i m_i^2 / (m_i^2 + n_i t^2)``; total required size is
    decreasing in ``t``.
    """
    populations = np.asarray(populations, dtype=np.float64)
    m = np.asarray(cv_per_stratum, dtype=np.float64)

    def required(t: float) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            s = populations * m**2 / (m**2 + populations * t**2)
        return np.where(m > 0, s, 0.0)

    lo, hi = 1e-12, max(float(m.max()), 1e-6) if len(m) else 1e-6
    if required(lo).sum() <= budget:
        t = lo
    else:
        while required(hi).sum() > budget:
            hi *= 2.0
            if hi > 1e12:
                break
        for _ in range(200):
            mid = np.sqrt(lo * hi)
            if required(mid).sum() > budget:
                lo = mid
            else:
                hi = mid
        t = hi
    sizes = np.ceil(required(t)).astype(np.int64)
    sizes = np.minimum(sizes, populations.astype(np.int64))
    sizes = np.maximum(
        sizes, np.minimum(min_per_stratum, populations.astype(np.int64))
    )
    return sizes


class CVOptInfSampler(StratifiedSampler):
    """The l-infinity-optimal sampler (paper Section 5 / Figure 6)."""

    name = "CVOPT-INF"

    def __init__(
        self,
        specs,
        min_per_stratum: int = 1,
        mean_floor: float = 1e-9,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if len(self.specs) != 1:
            raise NotImplementedError(
                "CVOPT-INF covers a single group-by clause (the paper "
                "evaluates SASG; we extend to MASG); use CVOptSampler "
                "for multiple group-bys"
            )
        self.min_per_stratum = int(min_per_stratum)
        self.mean_floor = float(mean_floor)
        self.derived = tuple(derived)

    @classmethod
    def from_sql(cls, sql: str, **kwargs) -> "CVOptInfSampler":
        specs, derived = specs_from_sql(sql)
        return cls(specs, derived=derived, **kwargs)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        spec = self.specs[0]
        keys = compute_group_keys(table, spec.group_by)
        stats = collect_strata_statistics(
            table, spec.group_by, spec.agg_columns, keys=keys
        )
        if len(spec.aggregates) == 1:
            agg = spec.aggregates[0]
            cs = stats.stats_for(agg.column)
            group_w = np.asarray(
                [
                    spec.effective_weight(stats.keys[i], agg)
                    for i in range(stats.num_strata)
                ]
            )
            sizes = cvopt_inf_sizes(
                stats.sizes,
                cs.mean,
                cs.std,
                budget,
                weights=group_w,
                min_per_stratum=self.min_per_stratum,
                mean_floor=self.mean_floor,
            )
        else:
            worst = np.zeros(stats.num_strata)
            for agg in spec.aggregates:
                cs = stats.stats_for(agg.column)
                cv = cs.cv(mean_floor=self.mean_floor)
                group_w = np.asarray(
                    [
                        spec.effective_weight(stats.keys[i], agg)
                        for i in range(stats.num_strata)
                    ]
                )
                contribution = np.sqrt(group_w) * np.nan_to_num(cv)
                worst = np.maximum(worst, contribution)
            sizes = linf_sizes_from_cv_bounds(
                stats.sizes, worst, budget, self.min_per_stratum
            )
        return Allocation(
            by=stats.by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
        )
