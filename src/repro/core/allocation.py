"""Budget allocation: Lemma 1, box constraints, and integerization.

Lemma 1 (the paper's workhorse): minimizing ``sum_i alpha_i / s_i``
subject to ``sum_i s_i <= M`` gives ``s_i = M sqrt(alpha_i) / sum_j
sqrt(alpha_j)``.

Real tables add box constraints the closed form ignores: an allocation
cannot exceed the stratum population (``s_c <= n_c``) and, to keep every
group answerable, should not fall below a floor (``min_per_stratum``).
The box-constrained problem is still convex and its KKT solution is
``s_i = clip(sqrt(alpha_i / lambda), lo_i, hi_i)`` for the multiplier
``lambda`` making the budget tight — found here by bisection
(:func:`box_constrained_allocation`). The paper notes RL's lack of the
upper cap as a concrete failure mode on small groups.

:func:`integerize` rounds a fractional allocation to integers summing to
the budget exactly (largest-remainder, cap-respecting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine is lower)
    from ..engine.statistics import StrataStatistics

__all__ = [
    "lemma1_allocation",
    "box_constrained_allocation",
    "integerize",
    "allocate",
    "multi_column_alphas",
    "allocate_for_columns",
]


def lemma1_allocation(alphas: np.ndarray, budget: float) -> np.ndarray:
    """Unconstrained closed form of Lemma 1.

    Strata with ``alpha = 0`` receive 0. If every alpha is 0 the budget
    is spread evenly (degenerate but well-defined).
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    if np.any(alphas < 0):
        raise ValueError("alphas must be non-negative")
    if budget < 0:
        raise ValueError("budget must be non-negative")
    roots = np.sqrt(alphas)
    total = roots.sum()
    if total == 0:
        return np.full(len(alphas), budget / max(len(alphas), 1))
    return budget * roots / total


def box_constrained_allocation(
    alphas: np.ndarray,
    budget: float,
    lower: np.ndarray,
    upper: np.ndarray,
) -> np.ndarray:
    """Exact solution of Lemma 1's objective under ``lower <= s <= upper``.

    Solves ``min sum alpha_i/s_i  s.t.  sum s_i = B, lo_i <= s_i <= hi_i``
    where ``B = clip(budget, sum lower, sum upper)``. Uses bisection on
    the KKT multiplier; ``sum_i clip(sqrt(alpha_i/lambda), lo, hi)`` is
    non-increasing in ``lambda``.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if np.any(lower > upper):
        raise ValueError("lower bound exceeds upper bound for some stratum")
    total_budget = float(np.clip(budget, lower.sum(), upper.sum()))

    def spent(lam: float) -> float:
        with np.errstate(divide="ignore"):
            raw = np.sqrt(alphas / lam)
        return float(np.clip(raw, lower, upper).sum())

    # alpha=0 strata stick at their lower bound for any lambda > 0.
    lo_lam, hi_lam = 1e-30, 1e30
    if spent(lo_lam) <= total_budget:
        lam = lo_lam
    elif spent(hi_lam) >= total_budget:
        lam = hi_lam
    else:
        for _ in range(200):
            mid = np.sqrt(lo_lam * hi_lam)  # geometric bisection
            if spent(mid) > total_budget:
                lo_lam = mid
            else:
                hi_lam = mid
        lam = hi_lam
    with np.errstate(divide="ignore"):
        raw = np.sqrt(alphas / lam)
    allocation = np.clip(raw, lower, upper)
    # Spread any bisection slack over unclamped strata, proportionally.
    slack = total_budget - allocation.sum()
    if abs(slack) > 1e-9:
        room = (
            (upper - allocation) if slack > 0 else (allocation - lower)
        )
        movable = room > 1e-12
        if movable.any():
            share = room[movable] / room[movable].sum()
            allocation[movable] += slack * share
            allocation = np.clip(allocation, lower, upper)
    return allocation


def integerize(
    fractional: np.ndarray, budget: int, caps: np.ndarray
) -> np.ndarray:
    """Largest-remainder rounding to integers summing to
    ``min(budget, sum caps)`` with ``out_i <= caps_i``."""
    fractional = np.asarray(fractional, dtype=np.float64)
    caps = np.asarray(caps, dtype=np.int64)
    fractional = np.minimum(fractional, caps)
    base = np.floor(fractional).astype(np.int64)
    target = int(min(budget, caps.sum()))
    deficit = target - int(base.sum())
    if deficit > 0:
        remainders = fractional - base
        room = caps - base
        # Prefer large remainders; strata with no room are skipped.
        order = np.argsort(-remainders, kind="stable")
        for idx in order:
            if deficit == 0:
                break
            if room[idx] > 0:
                step = int(min(room[idx], deficit))
                # One unit per stratum first pass keeps rounding fair;
                # but if remainders are exhausted we may need more.
                take = 1 if remainders[idx] > 0 else step
                take = int(min(take, room[idx], deficit))
                base[idx] += take
                room[idx] -= take
                deficit -= take
        if deficit > 0:  # second pass: fill wherever room remains
            for idx in np.argsort(-(caps - base), kind="stable"):
                if deficit == 0:
                    break
                step = int(min(caps[idx] - base[idx], deficit))
                base[idx] += step
                deficit -= step
    elif deficit < 0:
        order = np.argsort(fractional - base, kind="stable")
        for idx in order:
            if deficit == 0:
                break
            reducible = int(base[idx])
            step = int(min(reducible, -deficit))
            base[idx] -= step
            deficit += step
    return base


def allocate(
    alphas: np.ndarray,
    budget: int,
    populations: np.ndarray,
    min_per_stratum: int = 1,
) -> np.ndarray:
    """End-to-end CVOPT allocation: box-constrained Lemma 1 + rounding.

    ``populations`` are the stratum sizes ``n_c``; each stratum receives
    between ``min(min_per_stratum, n_c)`` and ``n_c`` rows, the total is
    exactly ``min(budget, sum n_c)`` (a floor set is shrunk
    proportionally if the budget cannot even cover the floors).
    """
    populations = np.asarray(populations, dtype=np.int64)
    if len(populations) == 0:
        return np.zeros(0, dtype=np.int64)
    lower = np.minimum(min_per_stratum, populations).astype(np.float64)
    if lower.sum() > budget:
        # Budget smaller than one row per stratum: keep floors only for
        # the strata with the largest optimization pressure.
        order = np.argsort(-np.asarray(alphas, dtype=np.float64), kind="stable")
        lower = np.zeros(len(populations))
        remaining = budget
        for idx in order:
            if remaining <= 0:
                break
            take = min(min_per_stratum, int(populations[idx]), remaining)
            lower[idx] = take
            remaining -= take
    upper = populations.astype(np.float64)
    fractional = box_constrained_allocation(alphas, budget, lower, upper)
    return integerize(fractional, budget, populations)


def multi_column_alphas(
    stats: "StrataStatistics",
    columns: Sequence[str],
    mean_floor: float = 1e-9,
) -> np.ndarray:
    """Per-stratum optimization pressure over several value columns.

    Theorem 2's shape for one grouping: ``alpha_c = sum_l
    (sigma_{c,l} / mu_{c,l})^2`` — every tracked aggregate column
    contributes its squared data CV, so the resulting allocation
    balances all of them rather than just one. With a single column
    this reduces exactly to the familiar ``(sigma/mu)^2`` alphas.

    Columns without statistics raise :class:`KeyError` (via
    :meth:`StrataStatistics.stats_for`); means are floored per column
    like the offline CVOPT path so zero-mean strata stay finite.
    """
    columns = list(dict.fromkeys(columns))
    if not columns:
        raise ValueError("need at least one column")
    alphas = np.zeros(stats.num_strata)
    for column in columns:
        data_cvs = np.nan_to_num(
            stats.stats_for(column).cv(mean_floor=mean_floor)
        )
        alphas += data_cvs**2
    return alphas


def allocate_for_columns(
    stats: "StrataStatistics",
    columns: Sequence[str],
    budget: int,
    min_per_stratum: int = 1,
    mean_floor: float = 1e-9,
) -> np.ndarray:
    """CVOPT allocation balancing every column in ``columns``.

    The multi-column counterpart of :func:`allocate`: alphas come from
    :func:`multi_column_alphas`, populations from ``stats.sizes``.
    """
    return allocate(
        multi_column_alphas(stats, columns, mean_floor=mean_floor),
        budget,
        stats.sizes,
        min_per_stratum=min_per_stratum,
    )
