"""CVOPT: provably optimal sample allocation for group-by queries.

This is the paper's primary contribution. One code path implements the
most general case (multiple aggregates, multiple group-bys — MAMG); the
named special cases fall out of it:

* **SASG** (Theorem 1): one aggregate, one grouping. The finest
  stratification *is* the grouping, the per-stratum score reduces to
  ``beta_i = w_i sigma_i^2 / mu_i^2`` and the optimal allocation is
  ``s_i ∝ sqrt(w_i) sigma_i / mu_i``.
* **MASG** (Theorem 2): ``beta_i = sum_j w_ij sigma_ij^2 / mu_ij^2``.
* **SAMG / MAMG** (Lemmas 2-3 and the general formula): stratify by the
  union ``C`` of all grouping attribute sets; for stratum ``c``

  ``beta_c = n_c^2 * sum_i (1 / n_{Pi(c,A_i)}^2)
             * sum_{l in L_i} w_{Pi(c,A_i),l} sigma_{c,l}^2 / mu_{Pi(c,A_i),l}^2``

  where ``Pi(c, A_i)`` is the group of query ``i`` containing stratum
  ``c``. Group-level statistics are rolled up from the finest strata, so
  the whole offline phase is a single statistics pass plus a sampling
  pass — the same cost as congressional sampling.

The allocation minimizing the weighted l2 norm of the coefficients of
variation assigns ``s_c ∝ sqrt(beta_c)`` (Lemma 1), box-constrained to
``min_per_stratum <= s_c <= n_c``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..engine.statistics import StrataStatistics, collect_strata_statistics, rollup
from ..engine.groupby import compute_group_keys
from ..engine.table import Table
from .allocation import allocate, lemma1_allocation
from .sample import Allocation, StratifiedSampler
from .spec import (
    DerivedColumn,
    GroupByQuerySpec,
    apply_derived_columns,
    specs_from_sql,
)

__all__ = [
    "CVOptSampler",
    "finest_stratification",
    "project_parents",
    "compute_betas",
    "sasg_fractional_allocation",
    "masg_fractional_allocation",
]


def finest_stratification(specs: Sequence[GroupByQuerySpec]) -> Tuple[str, ...]:
    """Union of all group-by attribute sets, in first-appearance order."""
    seen: dict = {}
    for spec in specs:
        for attr in spec.group_by:
            seen.setdefault(attr, None)
    return tuple(seen)


def project_parents(
    keys: Sequence[tuple],
    stratification: Sequence[str],
    attrs: Sequence[str],
):
    """Map each finest stratum to its parent group under ``attrs``.

    Returns ``(parent_gids, parent_keys)``: dense parent ids per stratum
    and the decoded parent key tuple per parent id (in ``attrs`` order).
    """
    positions = [list(stratification).index(a) for a in attrs]
    index: dict = {}
    parent_keys: list = []
    parent_gids = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys):
        parent = tuple(key[p] for p in positions)
        gid = index.get(parent)
        if gid is None:
            gid = len(parent_keys)
            index[parent] = gid
            parent_keys.append(parent)
        parent_gids[i] = gid
    return parent_gids, parent_keys


def compute_betas(
    stats: StrataStatistics,
    specs: Sequence[GroupByQuerySpec],
    mean_floor: float = 1e-9,
) -> np.ndarray:
    """Per-stratum scores ``beta_c`` of the general MAMG formula."""
    num_strata = stats.num_strata
    n_c = stats.sizes.astype(np.float64)
    betas = np.zeros(num_strata)
    for spec in specs:
        parent_gids, parent_keys = project_parents(
            stats.keys, stats.by, spec.group_by
        )
        parent_stats = rollup(stats, parent_gids, len(parent_keys))
        n_parent = parent_stats.sizes.astype(np.float64)
        inv_n_parent_sq = np.where(n_parent > 0, 1.0 / n_parent**2, 0.0)
        per_stratum = np.zeros(num_strata)
        for agg in spec.aggregates:
            fine = stats.stats_for(agg.column)
            sigma_sq = fine.variance  # per stratum c
            mu_parent = np.abs(parent_stats.stats_for(agg.column).mean)
            mu_parent = _floor_means(mu_parent, mean_floor, agg.column)
            weights = np.asarray(
                [
                    spec.effective_weight(parent_keys[g], agg)
                    for g in range(len(parent_keys))
                ]
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                per_parent_factor = weights / mu_parent**2
            per_stratum += sigma_sq * per_parent_factor[parent_gids]
        betas += n_c**2 * per_stratum * inv_n_parent_sq[parent_gids]
    return betas


def _floor_means(mu: np.ndarray, mean_floor: float, column: str) -> np.ndarray:
    finite = mu[np.isfinite(mu) & (mu > 0)]
    if len(finite) == 0:
        raise ValueError(
            f"all group means of column {column!r} are zero or undefined; "
            "the CV-based objective needs non-zero means (paper Section 1)"
        )
    floor = mean_floor * float(finite.max())
    return np.maximum(mu, floor)


class CVOptSampler(StratifiedSampler):
    """The l2-optimal sampler (Algorithm 1 generalized to MAMG).

    Parameters
    ----------
    specs:
        One spec or a sequence of :class:`GroupByQuerySpec`.
    min_per_stratum:
        Representation floor per stratum (default 1 row) so every group
        can be answered; strata whose score is 0 (e.g. zero variance)
        keep only the floor.
    mean_floor:
        Relative floor on group means to keep CVs defined.
    derived:
        :class:`DerivedColumn` list materialized before statistics
        collection (COUNT_IF indicators etc.).
    """

    name = "CVOPT"

    def __init__(
        self,
        specs,
        min_per_stratum: int = 1,
        mean_floor: float = 1e-9,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("CVOptSampler needs at least one query spec")
        self.min_per_stratum = int(min_per_stratum)
        self.mean_floor = float(mean_floor)
        self.derived = tuple(derived)

    @classmethod
    def from_sql(cls, sql: str, **kwargs) -> "CVOptSampler":
        """Build a sampler optimized for one SQL query's groups/aggregates."""
        specs, derived = specs_from_sql(sql)
        return cls(specs, derived=derived, **kwargs)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def collect_statistics(self, table: Table) -> StrataStatistics:
        """Pass 1: one-pass statistics over the finest stratification."""
        stratification = finest_stratification(self.specs)
        agg_columns: list = []
        for spec in self.specs:
            agg_columns.extend(spec.agg_columns)
        keys = compute_group_keys(table, stratification)
        return collect_strata_statistics(
            table, stratification, agg_columns, keys=keys
        )

    def allocation(self, table: Table, budget: int) -> Allocation:
        stats = self.collect_statistics(table)
        betas = compute_betas(stats, self.specs, self.mean_floor)
        sizes = allocate(
            betas, budget, stats.sizes, min_per_stratum=self.min_per_stratum
        )
        return Allocation(
            by=stats.by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
            scores=betas,
            stats=stats,
        )


# ----------------------------------------------------------------------
# closed-form helpers (Theorems 1 and 2, for tests and documentation)
# ----------------------------------------------------------------------
def sasg_fractional_allocation(
    budget: float,
    means: np.ndarray,
    stds: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Theorem 1: ``s_i = M sqrt(w_i) (sigma_i/mu_i) / sum_j ...``."""
    means = np.asarray(means, dtype=np.float64)
    stds = np.asarray(stds, dtype=np.float64)
    if weights is None:
        weights = np.ones_like(means)
    alphas = np.asarray(weights) * (stds / means) ** 2
    return lemma1_allocation(alphas, budget)


def masg_fractional_allocation(
    budget: float,
    means: np.ndarray,
    stds: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Theorem 2. ``means``/``stds``/``weights`` are (groups x aggregates)."""
    means = np.atleast_2d(np.asarray(means, dtype=np.float64))
    stds = np.atleast_2d(np.asarray(stds, dtype=np.float64))
    if weights is None:
        weights = np.ones_like(means)
    weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    alphas = (weights * (stds / means) ** 2).sum(axis=1)
    return lemma1_allocation(alphas, budget)
