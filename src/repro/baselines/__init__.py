"""Baseline samplers the paper compares CVOPT against, plus Neyman.

All baselines share :class:`~repro.core.sample.StratifiedSampler`'s
two-pass construction, so experiment code can treat every method
uniformly: ``make_samplers(specs, derived)`` returns the paper's lineup.
"""

from typing import Sequence

from ..core.cvopt import CVOptSampler
from ..core.spec import DerivedColumn
from .congress import CongressSampler, congress_scaled, congress_single_grouping
from .neyman import NeymanSampler, neyman_fractional_allocation
from .rl import RLSampler, rl_single_grouping
from .sample_seek import SampleSeekSampler, measure_bias_weights
from .senate import SenateSampler, equal_allocation
from .uniform import UniformSampler

__all__ = [
    "UniformSampler",
    "SenateSampler",
    "CongressSampler",
    "RLSampler",
    "SampleSeekSampler",
    "NeymanSampler",
    "equal_allocation",
    "congress_single_grouping",
    "congress_scaled",
    "rl_single_grouping",
    "measure_bias_weights",
    "neyman_fractional_allocation",
    "make_samplers",
]


def make_samplers(
    specs,
    derived: Sequence[DerivedColumn] = (),
    include_sample_seek: bool = True,
):
    """The paper's method lineup for one optimization target.

    Returns ``{display_name: sampler}`` in the order the paper's tables
    use: Uniform, Sample+Seek, CS, RL, CVOPT.
    """
    lineup = {"Uniform": UniformSampler()}
    if include_sample_seek:
        lineup["Sample+Seek"] = SampleSeekSampler(specs, derived=derived)
    lineup["CS"] = CongressSampler(specs, derived=derived)
    lineup["RL"] = RLSampler(specs, derived=derived)
    lineup["CVOPT"] = CVOptSampler(specs, derived=derived)
    return lineup
