"""Congressional sampling (CS) — Acharya, Gibbons, Poosala, SIGMOD 2000.

The paper's main frequency-based competitor. For a single grouping the
allocation is the *congress* hybrid: each stratum gets the maximum of
its *house* share (proportional to its size) and its *senate* share
(equal split), and the result is scaled back down to the budget.

For a collection of group-by queries (in particular CUBE), the *scaled
congress* generalization considers every grouping set ``T``: under
``T``, each group ``t`` gets an equal share ``M / m_T``, subdivided over
the finest strata ``g ⊂ t`` in proportion to their sizes. A finest
stratum's final share is its maximum over all grouping sets, rescaled to
the budget. CS uses only frequencies — never variances or means — which
is exactly the gap CVOPT fills.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.cvopt import finest_stratification, project_parents
from ..core.sample import Allocation, StratifiedSampler
from ..core.spec import DerivedColumn, GroupByQuerySpec, apply_derived_columns
from ..engine.statistics import collect_strata_statistics
from ..engine.table import Table

__all__ = [
    "CongressSampler",
    "congress_single_grouping",
    "congress_scaled",
]


def _scale_with_caps(raw: np.ndarray, populations: np.ndarray, budget: int) -> np.ndarray:
    """Scale raw scores to integer sizes summing to min(budget, N),
    respecting per-stratum caps (iterative rescale as strata saturate)."""
    populations = np.asarray(populations, dtype=np.int64)
    raw = np.asarray(raw, dtype=np.float64)
    target = int(min(budget, populations.sum()))
    sizes = np.zeros(len(raw), dtype=np.float64)
    active = raw > 0
    remaining = float(target)
    for _ in range(len(raw) + 1):
        if remaining <= 0 or not active.any():
            break
        weights = np.where(active, raw, 0.0)
        total = weights.sum()
        if total <= 0:
            break
        proposal = remaining * weights / total
        capped = np.minimum(sizes + proposal, populations)
        newly_saturated = active & (capped >= populations)
        sizes = np.where(active, capped, sizes)
        remaining = target - sizes.sum()
        if not newly_saturated.any():
            break
        active = active & ~newly_saturated
    fractional = np.minimum(sizes, populations)
    from ..core.allocation import integerize

    return integerize(fractional, target, populations)


def congress_single_grouping(
    populations: np.ndarray, budget: int
) -> np.ndarray:
    """House/senate hybrid for one grouping (basic congress)."""
    populations = np.asarray(populations, dtype=np.int64)
    r = len(populations)
    if r == 0:
        return np.zeros(0, dtype=np.int64)
    total = float(populations.sum())
    house = budget * populations / total
    senate = np.full(r, budget / r)
    congress = np.maximum(house, senate)
    return _scale_with_caps(congress, populations, budget)


def congress_scaled(
    populations: np.ndarray,
    parent_gids_per_set: Sequence[np.ndarray],
    parent_sizes_per_set: Sequence[np.ndarray],
    budget: int,
) -> np.ndarray:
    """Scaled congress over several grouping sets.

    ``parent_gids_per_set[t][c]`` maps finest stratum ``c`` to its group
    under grouping set ``t``; ``parent_sizes_per_set[t][g]`` is that
    group's population.
    """
    populations = np.asarray(populations, dtype=np.float64)
    best = np.zeros(len(populations))
    for parent_gids, parent_sizes in zip(
        parent_gids_per_set, parent_sizes_per_set
    ):
        m_t = len(parent_sizes)
        if m_t == 0:
            continue
        group_share = budget / m_t
        parent_sizes = np.asarray(parent_sizes, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            share = group_share * populations / parent_sizes[parent_gids]
        best = np.maximum(best, np.nan_to_num(share))
    return _scale_with_caps(best, populations.astype(np.int64), budget)


class CongressSampler(StratifiedSampler):
    """CS baseline over the specs' grouping sets."""

    name = "CS"

    def __init__(
        self,
        specs,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("CongressSampler needs at least one query spec")
        self.derived = tuple(derived)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        by = finest_stratification(self.specs)
        stats = collect_strata_statistics(table, by, [])
        grouping_sets = {spec.group_by for spec in self.specs}
        if len(grouping_sets) == 1 and next(iter(grouping_sets)) == by:
            sizes = congress_single_grouping(stats.sizes, budget)
        else:
            gids_per_set, sizes_per_set = [], []
            for attrs in sorted(grouping_sets, key=lambda a: (len(a), a)):
                parent_gids, parent_keys = project_parents(
                    stats.keys, by, attrs
                )
                parent_sizes = np.bincount(
                    parent_gids,
                    weights=stats.sizes.astype(np.float64),
                    minlength=len(parent_keys),
                )
                gids_per_set.append(parent_gids)
                sizes_per_set.append(parent_sizes)
            sizes = congress_scaled(
                stats.sizes, gids_per_set, sizes_per_set, budget
            )
        return Allocation(
            by=by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
        )
