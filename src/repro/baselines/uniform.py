"""Uniform sampling baseline: SRS without replacement over the table.

The paper's ``Uniform``: every row has the same inclusion probability,
so small groups are under-represented or missed entirely — the failure
mode motivating stratification (errors up to 100-135% in Figure 1).
"""

from __future__ import annotations

import numpy as np

from ..core.sample import Allocation, StratifiedSampler
from ..engine.table import Table

__all__ = ["UniformSampler"]


class UniformSampler(StratifiedSampler):
    """One stratum = the whole table; HT weight ``N / M`` per row."""

    name = "Uniform"

    def allocation(self, table: Table, budget: int) -> Allocation:
        n = table.num_rows
        return Allocation(
            by=(),
            keys=[()] if n > 0 else [],
            populations=np.asarray([n] if n > 0 else [], dtype=np.int64),
            sizes=np.asarray(
                [min(budget, n)] if n > 0 else [], dtype=np.int64
            ),
        )
