"""RL — the Roesch & Lehner heuristic (EDBT 2009).

The paper's closest competitor: like CVOPT it allocates by coefficient
of variation, but as a heuristic without an optimization target, and —
the failure mode the paper calls out explicitly — **it assumes every
group is large and ignores group size**: a group's share is proportional
to its data CV alone, so small, high-CV groups can be allocated more
rows than they contain. Following the paper's description we cap such
allocations at the group size *without redistributing* the excess,
wasting budget exactly where RL's assumption breaks. (Redistribution
would turn RL into something closer to CVOPT; see the ablation bench.)

For multiple aggregates the group score is the root-sum-square of the
per-aggregate CVs; for multiple group-bys RL partitions hierarchically:
the budget is split equally over the queries, each query's share is
split over its groups by CV, and a group's share is subdivided over its
finest strata proportionally to stratum sizes. Both rules are our
reconstruction of RL's heuristics (the original paper gives no closed
form for these cases), noted in DESIGN.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.cvopt import finest_stratification, project_parents
from ..core.sample import Allocation, StratifiedSampler
from ..core.spec import DerivedColumn, GroupByQuerySpec, apply_derived_columns
from ..engine.statistics import collect_strata_statistics, rollup
from ..engine.table import Table

__all__ = ["RLSampler", "rl_single_grouping"]


def rl_single_grouping(
    populations: np.ndarray, cvs: np.ndarray, budget: int
) -> np.ndarray:
    """CV-proportional allocation, capped without redistribution."""
    populations = np.asarray(populations, dtype=np.int64)
    cvs = np.nan_to_num(np.asarray(cvs, dtype=np.float64))
    total = cvs.sum()
    if total <= 0:
        # All-constant groups: degenerate to an even split.
        raw = np.full(len(populations), budget / max(len(populations), 1))
    else:
        raw = budget * cvs / total
    sizes = np.minimum(np.round(raw).astype(np.int64), populations)
    return np.maximum(sizes, 0)


class RLSampler(StratifiedSampler):
    """The RL baseline."""

    name = "RL"

    def __init__(
        self,
        specs,
        derived: Sequence[DerivedColumn] = (),
        mean_floor: float = 1e-9,
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("RLSampler needs at least one query spec")
        self.derived = tuple(derived)
        self.mean_floor = float(mean_floor)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        by = finest_stratification(self.specs)
        agg_columns: list = []
        for spec in self.specs:
            agg_columns.extend(spec.agg_columns)
        stats = collect_strata_statistics(table, by, agg_columns)

        single_grouping = all(spec.group_by == by for spec in self.specs)
        if single_grouping:
            scores = self._group_scores(stats, self.specs)
            sizes = rl_single_grouping(stats.sizes, scores, budget)
        else:
            sizes = self._hierarchical(stats, budget)
        return Allocation(
            by=by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
            scores=None,
        )

    def _group_scores(self, stats, specs) -> np.ndarray:
        """Root-sum-square of per-aggregate CVs per group."""
        total = np.zeros(stats.num_strata)
        for spec in specs:
            for agg in spec.aggregates:
                cv = stats.stats_for(agg.column).cv(self.mean_floor)
                total += np.nan_to_num(cv) ** 2 * agg.weight * spec.weight
        return np.sqrt(total)

    def _hierarchical(self, stats, budget: int) -> np.ndarray:
        per_query = budget / len(self.specs)
        raw = np.zeros(stats.num_strata)
        fine_sizes = stats.sizes.astype(np.float64)
        for spec in self.specs:
            parent_gids, parent_keys = project_parents(
                stats.keys, stats.by, spec.group_by
            )
            parent_stats = rollup(stats, parent_gids, len(parent_keys))
            group_cv = np.zeros(len(parent_keys))
            for agg in spec.aggregates:
                cv = parent_stats.stats_for(agg.column).cv(self.mean_floor)
                group_cv += np.nan_to_num(cv) ** 2 * agg.weight * spec.weight
            group_cv = np.sqrt(group_cv)
            total_cv = group_cv.sum()
            if total_cv <= 0:
                group_share = np.full(
                    len(parent_keys), per_query / max(len(parent_keys), 1)
                )
            else:
                group_share = per_query * group_cv / total_cv
            parent_sizes = parent_stats.sizes.astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                fraction = np.where(
                    parent_sizes[parent_gids] > 0,
                    fine_sizes / parent_sizes[parent_gids],
                    0.0,
                )
            raw += group_share[parent_gids] * fraction
        sizes = np.minimum(np.round(raw).astype(np.int64), stats.sizes)
        sizes = np.maximum(sizes, 0)
        # Rounding may overshoot the budget by a handful of rows; trim
        # from the strata whose share was rounded up the most.
        excess = int(sizes.sum()) - budget
        if excess > 0:
            rounded_up = np.argsort(raw - sizes, kind="stable")
            for idx in rounded_up:
                if excess == 0:
                    break
                take = int(min(sizes[idx], excess))
                if take > 0:
                    sizes[idx] -= 1
                    excess -= 1
        return sizes
