"""Senate allocation: equal budget per stratum.

Used as a component of congressional sampling [Acharya et al. 2000] and
discussed in the paper's Section 3.1: it ignores both group sizes and
within-group variability, so high-variance groups get the same sample
as constant ones. Shares that exceed a stratum's population are
redistributed over the remaining strata (water-filling), so the budget
is spent fully whenever possible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.sample import Allocation, StratifiedSampler
from ..core.spec import DerivedColumn, GroupByQuerySpec, apply_derived_columns
from ..core.cvopt import finest_stratification
from ..engine.statistics import collect_strata_statistics
from ..engine.table import Table

__all__ = ["SenateSampler", "equal_allocation"]


def equal_allocation(populations: np.ndarray, budget: int) -> np.ndarray:
    """Equal shares with cap-and-redistribute; totals min(budget, N)."""
    populations = np.asarray(populations, dtype=np.int64)
    r = len(populations)
    sizes = np.zeros(r, dtype=np.int64)
    if r == 0:
        return sizes
    remaining = int(min(budget, populations.sum()))
    open_strata = populations > 0
    while remaining > 0 and open_strata.any():
        share = remaining // int(open_strata.sum())
        if share == 0:
            # Fewer rows than open strata: one each, largest rooms first.
            room = populations - sizes
            order = np.argsort(-room, kind="stable")
            for idx in order:
                if remaining == 0:
                    break
                if open_strata[idx] and room[idx] > 0:
                    sizes[idx] += 1
                    remaining -= 1
            break
        add = np.minimum(share, populations - sizes)
        add = np.where(open_strata, add, 0)
        sizes += add
        remaining -= int(add.sum())
        open_strata = open_strata & (sizes < populations)
        if int(add.sum()) == 0:
            break
    return sizes


class SenateSampler(StratifiedSampler):
    """Equal allocation over the finest stratification of the specs."""

    name = "Senate"

    def __init__(
        self,
        specs,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("SenateSampler needs at least one query spec")
        self.derived = tuple(derived)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        by = finest_stratification(self.specs)
        stats = collect_strata_statistics(table, by, [])
        sizes = equal_allocation(stats.sizes, budget)
        return Allocation(
            by=by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
        )
