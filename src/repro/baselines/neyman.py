"""Neyman allocation (Neyman 1934) — variance-optimal for a *single*
population-mean estimate: ``s_i ∝ n_i sigma_i``.

Not one of the paper's evaluated baselines, but its allocation is the
classical reference point the introduction contrasts with (optimizing a
single estimate vs. a set of per-group estimates), so we include it for
the ablation benches: on group-by workloads Neyman over-allocates to
big, high-variance groups and starves small ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.allocation import allocate
from ..core.cvopt import finest_stratification
from ..core.sample import Allocation, StratifiedSampler
from ..core.spec import DerivedColumn, GroupByQuerySpec, apply_derived_columns
from ..engine.statistics import collect_strata_statistics
from ..engine.table import Table

__all__ = ["NeymanSampler", "neyman_fractional_allocation"]


def neyman_fractional_allocation(
    budget: float, populations: np.ndarray, stds: np.ndarray
) -> np.ndarray:
    """Closed form ``s_i = M n_i sigma_i / sum_j n_j sigma_j``."""
    populations = np.asarray(populations, dtype=np.float64)
    stds = np.asarray(stds, dtype=np.float64)
    scores = populations * stds
    total = scores.sum()
    if total <= 0:
        return np.full(len(populations), budget / max(len(populations), 1))
    return budget * scores / total


class NeymanSampler(StratifiedSampler):
    """Neyman allocation over the finest stratification.

    With multiple aggregates the per-stratum score uses the root-sum-
    square of the per-aggregate standard deviations.
    """

    name = "Neyman"

    def __init__(
        self,
        specs,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("NeymanSampler needs at least one query spec")
        self.derived = tuple(derived)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        by = finest_stratification(self.specs)
        agg_columns: list = []
        for spec in self.specs:
            agg_columns.extend(spec.agg_columns)
        stats = collect_strata_statistics(table, by, agg_columns)
        var_sum = np.zeros(stats.num_strata)
        for column in dict.fromkeys(agg_columns):
            var_sum += stats.stats_for(column).variance
        # Lemma 1 with alpha_i = (n_i sigma_i)^2 reproduces Neyman's
        # closed form, and the shared allocator adds caps + floors.
        alphas = (stats.sizes.astype(np.float64) ** 2) * var_sum
        sizes = allocate(alphas, budget, stats.sizes, min_per_stratum=0)
        return Allocation(
            by=by,
            keys=stats.keys,
            populations=stats.sizes,
            sizes=sizes,
            scores=alphas,
        )
