"""Sample+Seek baseline (Ding et al., SIGMOD 2016) — sampling half.

Measure-biased sampling: a row's inclusion probability is proportional
to its value on the aggregation column, so heavy rows (which dominate
SUM/AVG) are preferentially kept. As the paper notes, this ignores
*within-group variability*: a large group of identical heavy rows still
soaks up budget that CVOPT would move to high-CV groups.

Estimates are normalized per the paper ("after applying appropriate
normalization to get an unbiased answer"): with inclusion probabilities
``pi_r ≈ min(1, M * w_r / sum w)`` each sampled row carries the
Horvitz-Thompson weight ``1 / pi_r``.

The companion "seek" index for very-low-selectivity point predicates is
out of scope (it is orthogonal to allocation quality; see DESIGN.md,
Substitutions).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.sample import (
    STRATUM_COLUMN,
    WEIGHT_COLUMN,
    Allocation,
    StratifiedSample,
    StratifiedSampler,
)
from ..core.spec import DerivedColumn, GroupByQuerySpec, apply_derived_columns
from ..engine.reservoir import weighted_sample_without_replacement
from ..engine.schema import DType
from ..engine.table import Column, Table

__all__ = ["SampleSeekSampler", "measure_bias_weights"]


def measure_bias_weights(table: Table, measure_columns: Sequence[str]) -> np.ndarray:
    """Per-row sampling weight: mean-normalized sum over the measures.

    Normalization keeps a multi-measure bias balanced when the measures
    live on different scales. Non-positive rows get a tiny floor so
    every row remains sampleable (the original uses |value|).
    """
    n = table.num_rows
    combined = np.zeros(n, dtype=np.float64)
    for column in measure_columns:
        values = np.abs(table.column(column).values_numeric().astype(np.float64))
        mean = values.mean() if n else 0.0
        if mean > 0:
            combined += values / mean
        else:
            combined += 1.0
    if not measure_columns:
        combined[:] = 1.0
    floor = combined[combined > 0].min() * 1e-6 if (combined > 0).any() else 1.0
    return np.maximum(combined, floor)


class SampleSeekSampler(StratifiedSampler):
    """Measure-biased row-level sampler."""

    name = "Sample+Seek"

    def __init__(
        self,
        specs,
        derived: Sequence[DerivedColumn] = (),
    ) -> None:
        if isinstance(specs, GroupByQuerySpec):
            specs = (specs,)
        self.specs = tuple(specs)
        if not self.specs:
            raise ValueError("SampleSeekSampler needs at least one query spec")
        self.derived = tuple(derived)

    def prepare(self, table: Table) -> Table:
        return apply_derived_columns(table, self.derived)

    def allocation(self, table: Table, budget: int) -> Allocation:
        # Row-level inclusion probabilities do not form strata; this is
        # only used for reporting.
        n = table.num_rows
        return Allocation(
            by=(),
            keys=[()] if n > 0 else [],
            populations=np.asarray([n] if n > 0 else [], dtype=np.int64),
            sizes=np.asarray([min(budget, n)] if n > 0 else [], dtype=np.int64),
        )

    def sample(
        self,
        table: Table,
        budget: int,
        seed: int | np.random.Generator = 0,
    ) -> StratifiedSample:
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        if budget <= 0:
            raise ValueError("budget must be positive")
        table = self.prepare(table)
        measures: list = []
        for spec in self.specs:
            measures.extend(spec.agg_columns)
        measures = list(dict.fromkeys(measures))
        bias = measure_bias_weights(table, measures)

        m = min(budget, table.num_rows)
        indices = weighted_sample_without_replacement(bias, m, rng)
        sampled = table.take(indices)

        inclusion = np.minimum(1.0, m * bias / bias.sum())
        ht_weights = 1.0 / inclusion[indices]
        sampled = sampled.with_column(
            WEIGHT_COLUMN, Column(DType.FLOAT64, ht_weights)
        )
        sampled = sampled.with_column(
            STRATUM_COLUMN,
            Column(DType.INT64, np.zeros(len(indices), dtype=np.int64)),
        )
        return StratifiedSample(
            table=sampled,
            allocation=self.allocation(table, budget),
            method=self.name,
            source_rows=table.num_rows,
            budget=budget,
        )
