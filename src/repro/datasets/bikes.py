"""Synthetic Divvy-like bike-share dataset.

The real Bikes data (paper Section 6) covers ~11.5M subscriber rides,
2016-2018, 619 stations. The experiments depend on station-size skew
(Zipf), heterogeneous trip-duration dispersion per station, and an age
column with a small share of invalid (0) entries that queries B1/B3
filter with ``WHERE age > 0``.

Columns: trip_id, from_station_id, to_station_id, year, start_time,
trip_duration (seconds), age, gender.
"""

from __future__ import annotations

import numpy as np

from ..engine.schema import DType
from ..engine.table import Column, Table

__all__ = ["generate_bikes"]

_SECONDS_2016 = 1451606400  # 2016-01-01T00:00:00Z
_SECONDS_PER_YEAR = 31_557_600


def generate_bikes(
    num_rows: int = 120_000,
    num_stations: int = 200,
    seed: int = 11,
    zipf_exponent: float = 1.1,
    invalid_age_share: float = 0.05,
) -> Table:
    """Generate the synthetic Bikes table (seeded, deterministic).

    ``num_stations`` can go up to 619 (the real network's size); the
    default keeps the finest stratification small enough for quick test
    runs while preserving the skew.
    """
    rng = np.random.default_rng(seed)

    # --- stations: Zipf-skewed popularity ------------------------------
    ranks = rng.permutation(num_stations) + 1
    station_probs = ranks.astype(np.float64) ** (-zipf_exponent)
    station_probs /= station_probs.sum()
    from_station = rng.choice(num_stations, size=num_rows, p=station_probs) + 1
    to_station = rng.choice(num_stations, size=num_rows, p=station_probs) + 1

    # --- years: ridership grows over the three seasons -----------------
    year_probs = np.asarray([0.28, 0.33, 0.39])
    year_offset = rng.choice(3, size=num_rows, p=year_probs)
    year = 2016 + year_offset
    start_time = (
        _SECONDS_2016
        + year_offset.astype(np.int64) * _SECONDS_PER_YEAR
        + rng.integers(0, _SECONDS_PER_YEAR, size=num_rows, dtype=np.int64)
    )

    # --- trip duration: lognormal, station-specific spread --------------
    station_scale = rng.uniform(np.log(420.0), np.log(1500.0), num_stations)
    station_sigma = rng.uniform(0.3, 1.1, num_stations)
    duration = rng.lognormal(
        mean=station_scale[from_station - 1],
        sigma=station_sigma[from_station - 1],
    )
    duration = np.maximum(duration, 60.0)

    # --- rider age: station-dependent mean, a slice of invalid zeros ---
    # Age dispersion is anti-correlated with duration dispersion per
    # station (commuter stations: varied riders, uniform short trips;
    # leisure stations: similar riders, wildly varying trips). This is
    # what makes the two aggregates of query B1 genuinely compete for
    # budget in the weighted-aggregate experiment (paper Figure 2).
    station_age_mean = rng.uniform(28.0, 44.0, num_stations)
    duration_rank = np.argsort(np.argsort(station_sigma))
    station_age_sigma = 3.0 + 12.0 * (
        1.0 - duration_rank / max(num_stations - 1, 1)
    )
    age = rng.normal(
        station_age_mean[from_station - 1],
        station_age_sigma[from_station - 1],
    )
    age = np.clip(np.round(age), 16, 80)
    invalid = rng.random(num_rows) < invalid_age_share
    age = np.where(invalid, 0, age).astype(np.int64)

    gender_codes = rng.choice(
        3, size=num_rows, p=[0.68, 0.27, 0.05]
    ).astype(np.int32)

    return Table(
        {
            "trip_id": Column(
                DType.INT64, np.arange(1, num_rows + 1, dtype=np.int64)
            ),
            "from_station_id": Column(
                DType.INT64, from_station.astype(np.int64)
            ),
            "to_station_id": Column(DType.INT64, to_station.astype(np.int64)),
            "year": Column(DType.INT64, year.astype(np.int64)),
            "start_time": Column(DType.TIMESTAMP, start_time),
            "trip_duration": Column(
                DType.FLOAT64, duration.astype(np.float64)
            ),
            "age": Column(DType.INT64, age),
            "gender": Column.from_codes(
                gender_codes, ["Male", "Female", "Unknown"]
            ),
        },
        name="Bikes",
    )
