"""Seeded synthetic datasets standing in for the paper's corpora."""

from .bikes import generate_bikes
from .openaq import OPENAQ_COUNTRIES, OPENAQ_PARAMETERS, generate_openaq
from .student import student_table, student_workload
from .synthetic import (
    heterogeneity_scenario,
    make_grouped_table,
    two_group_example,
)

__all__ = [
    "generate_openaq",
    "generate_bikes",
    "OPENAQ_COUNTRIES",
    "OPENAQ_PARAMETERS",
    "student_table",
    "student_workload",
    "make_grouped_table",
    "two_group_example",
    "heterogeneity_scenario",
]
