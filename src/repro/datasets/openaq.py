"""Synthetic OpenAQ-like air-quality dataset.

The real OpenAQ corpus (paper Section 6) has ~200M measurements from 67
countries, 2015-2018; group sizes, means and variances differ wildly
across (country, parameter) combinations — exactly the heterogeneity the
experiments stress. This generator reproduces those *moments* at
laptop scale (documented substitution, DESIGN.md Section 5):

* country frequencies follow a Zipf law (a few countries dominate);
* each country reports a random subset of the 7 parameters; ``bc``
  (black carbon, the AQ1 query's subject) is reported by roughly half;
* measurement values are lognormal with per-(country, parameter)
  location and scale, so group CVs span an order of magnitude;
* ``local_time`` spans 2015-2018 with uniform hours (the AQ3.x
  selectivity variants slice the hour-of-day window);
* latitudes are country-specific with both hemispheres present (AQ5
  filters ``latitude > 0``).

Columns: country, parameter, unit, location, latitude, value,
local_time.
"""

from __future__ import annotations

import numpy as np

from ..engine.schema import DType
from ..engine.table import Column, Table

__all__ = ["generate_openaq", "OPENAQ_PARAMETERS", "OPENAQ_COUNTRIES"]

OPENAQ_PARAMETERS = ("pm25", "pm10", "o3", "no2", "so2", "co", "bc")

#: Unit per parameter (mirrors the real feed's conventions).
_UNITS = {
    "pm25": "ug/m3",
    "pm10": "ug/m3",
    "o3": "ppm",
    "no2": "ppm",
    "so2": "ppm",
    "co": "ppm",
    "bc": "ug/m3",
}

#: Log-space base level per parameter, chosen so the paper's thresholds
#: are meaningful: bc around 0.04 (AQ1's high-level cutoff), co around
#: 0.5 (AQ6's cutoff).
_LOG_BASE = {
    "pm25": np.log(25.0),
    "pm10": np.log(40.0),
    "o3": np.log(0.03),
    "no2": np.log(0.02),
    "so2": np.log(0.005),
    "co": np.log(0.45),
    "bc": np.log(0.035),
}

#: Relative prevalence of parameters (pm25 dominates the real feed).
#: bc is rarer in the real feed (~2-3%); we keep it at ~10% so that
#: query AQ1 (which filters on bc AND one year) remains estimable at
#: laptop scale — the real corpus is three orders of magnitude larger.
_PREVALENCE = {
    "pm25": 0.27,
    "pm10": 0.20,
    "o3": 0.13,
    "no2": 0.12,
    "so2": 0.09,
    "co": 0.09,
    "bc": 0.10,
}

OPENAQ_COUNTRIES = (
    "US", "IN", "CN", "FR", "DE", "ES", "GB", "AU", "CL", "TH",
    "VN", "NL", "TR", "CA", "MX", "BR", "PL", "CZ", "IT", "AT",
    "BE", "CH", "NO", "SE", "FI", "DK", "PT", "GR", "HU", "SK",
    "IL", "ZA", "PE", "CO", "AR", "ID", "MN", "NP", "LK", "KW",
    "BA", "MK", "RS", "XK", "ET", "UG", "NG", "GH",
)

_SECONDS_2015 = 1420070400  # 2015-01-01T00:00:00Z
_SECONDS_2019 = 1546300800  # 2019-01-01T00:00:00Z

#: Rough central latitude per country (sign matters for AQ5).
_BASE_LATITUDES = {
    "US": 39.0, "IN": 21.0, "CN": 35.0, "FR": 46.5, "DE": 51.0,
    "ES": 40.0, "GB": 53.0, "AU": -27.0, "CL": -33.0, "TH": 15.0,
    "VN": 16.0, "NL": 52.2, "TR": 39.0, "CA": 53.0, "MX": 23.0,
    "BR": -10.0, "PL": 52.0, "CZ": 49.8, "IT": 42.5, "AT": 47.5,
    "BE": 50.6, "CH": 46.8, "NO": 62.0, "SE": 62.0, "FI": 64.0,
    "DK": 56.0, "PT": 39.5, "GR": 39.0, "HU": 47.0, "SK": 48.7,
    "IL": 31.5, "ZA": -29.0, "PE": -10.0, "CO": 4.0, "AR": -35.0,
    "ID": -2.0, "MN": 46.9, "NP": 28.2, "LK": 7.5, "KW": 29.3,
    "BA": 44.0, "MK": 41.6, "RS": 44.0, "XK": 42.6, "ET": 9.0,
    "UG": 1.3, "NG": 9.1, "GH": 7.9,
}


def generate_openaq(
    num_rows: int = 200_000,
    num_countries: int = 38,
    seed: int = 7,
    zipf_exponent: float = 1.05,
) -> Table:
    """Generate the synthetic OpenAQ table (seeded, deterministic)."""
    if num_countries > len(OPENAQ_COUNTRIES):
        raise ValueError(
            f"at most {len(OPENAQ_COUNTRIES)} countries available"
        )
    rng = np.random.default_rng(seed)
    countries = OPENAQ_COUNTRIES[:num_countries]
    params = OPENAQ_PARAMETERS

    # --- country frequencies: Zipf over a shuffled rank assignment ----
    ranks = rng.permutation(num_countries) + 1
    country_probs = ranks.astype(np.float64) ** (-zipf_exponent)
    country_probs /= country_probs.sum()

    # --- per-country parameter availability ---------------------------
    # Every country reports pm25; other parameters are present with
    # parameter-specific probability (bc ~ 55%).
    presence = {"pm25": 1.0, "pm10": 0.85, "o3": 0.7, "no2": 0.7,
                "so2": 0.6, "co": 0.65, "bc": 0.55}
    allowed: list = []
    for ci in range(num_countries):
        mask = [p for p in params if rng.random() < presence[p]]
        if "pm25" not in mask:
            mask.insert(0, "pm25")
        allowed.append(mask)
    # Guarantee VN reports co (query AQ6 filters country = 'VN').
    if "VN" in countries:
        vn = countries.index("VN")
        if "co" not in allowed[vn]:
            allowed[vn].append("co")
        if "bc" not in allowed[vn]:
            allowed[vn].append("bc")

    # --- per-(country, parameter) value moments -----------------------
    # Location shifts per country (pollution level) and heterogeneous
    # log-scale (group CVs from ~0.2 to ~2.5).
    country_shift = rng.normal(0.0, 0.6, size=num_countries)
    log_sigma = rng.uniform(0.2, 1.0, size=(num_countries, len(params)))

    # --- assign rows ---------------------------------------------------
    country_idx = rng.choice(num_countries, size=num_rows, p=country_probs)
    param_idx = np.empty(num_rows, dtype=np.int64)
    param_positions = {p: i for i, p in enumerate(params)}
    for ci in range(num_countries):
        rows = np.flatnonzero(country_idx == ci)
        if len(rows) == 0:
            continue
        local_params = allowed[ci]
        weights = np.asarray([_PREVALENCE[p] for p in local_params])
        weights /= weights.sum()
        chosen = rng.choice(len(local_params), size=len(rows), p=weights)
        param_idx[rows] = np.asarray(
            [param_positions[p] for p in local_params]
        )[chosen]

    mu_log = np.asarray(
        [[_LOG_BASE[p] for p in params]]
    ) + country_shift[:, None]
    values = rng.lognormal(
        mean=mu_log[country_idx, param_idx],
        sigma=log_sigma[country_idx, param_idx],
    )

    # --- timestamps (uniform over 2015-2018, uniform hours) ------------
    local_time = rng.integers(
        _SECONDS_2015, _SECONDS_2019, size=num_rows, dtype=np.int64
    )

    # Per-country year-over-year drift: pollution levels trend up or
    # down by 8-30% per year. Query AQ1 measures exactly this change;
    # without a real trend its true answers would be ~0 and relative
    # errors meaningless.
    drift_magnitude = rng.uniform(0.08, 0.30, size=num_countries)
    drift_sign = np.where(rng.random(num_countries) < 0.5, -1.0, 1.0)
    drift = drift_magnitude * drift_sign
    year_index = (
        local_time.astype("datetime64[s]")
        .astype("datetime64[Y]")
        .astype(np.int64)
        + 1970
        - 2015
    )
    values = values * (1.0 + drift[country_idx]) ** year_index

    # --- locations and latitude ----------------------------------------
    num_locations = rng.integers(3, 40, size=num_countries)
    location_of_row = rng.integers(0, 1_000_000, size=num_rows) % (
        num_locations[country_idx]
    )
    location_labels = np.asarray(
        [
            f"{countries[ci]}_site{int(loc):03d}"
            for ci, loc in zip(country_idx, location_of_row)
        ],
        dtype=object,
    )
    base_lat = np.asarray([_BASE_LATITUDES[c] for c in countries])
    latitude = base_lat[country_idx] + rng.normal(0.0, 2.0, size=num_rows)

    country_col = Column.from_codes(
        country_idx.astype(np.int32), list(countries)
    )
    param_col = Column.from_codes(param_idx.astype(np.int32), list(params))
    unit_values = np.asarray(
        [_UNITS[params[pi]] for pi in param_idx], dtype=object
    )

    return Table(
        {
            "country": country_col,
            "parameter": param_col,
            "unit": Column.from_strings(unit_values),
            "location": Column.from_strings(location_labels),
            "latitude": Column(DType.FLOAT64, latitude.astype(np.float64)),
            "value": Column(DType.FLOAT64, values.astype(np.float64)),
            "local_time": Column(DType.TIMESTAMP, local_time),
        },
        name="OpenAQ",
    )
