"""The paper's example Student table (Table 1) and workload (Table 2).

Used to unit-test the workload-to-weights derivation of Section 4.3
exactly against the paper's worked example.
"""

from __future__ import annotations

from ..engine.table import Table
from ..workload.model import Workload

__all__ = ["student_table", "student_workload"]


def student_table() -> Table:
    """The 8-row Student table of paper Table 1."""
    return Table.from_pydict(
        {
            "id": [1, 2, 3, 4, 5, 6, 7, 8],
            "age": [25, 22, 24, 28, 21, 23, 27, 26],
            "gpa": [3.4, 3.1, 3.8, 3.6, 3.5, 3.2, 3.7, 3.3],
            "sat": [1250, 1280, 1230, 1270, 1210, 1260, 1220, 1230],
            "major": ["CS", "CS", "Math", "Math", "EE", "EE", "ME", "ME"],
            "college": [
                "Science", "Science", "Science", "Science",
                "Engineering", "Engineering", "Engineering", "Engineering",
            ],
        },
        name="Student",
    )


def student_workload() -> Workload:
    """The 45-query workload of paper Table 2 (A x20, B x10, C x15)."""
    workload = Workload()
    workload.add(
        "SELECT AVG(age), AVG(gpa) FROM Student GROUP BY major",
        repeats=20,
        name="A",
    )
    workload.add(
        "SELECT AVG(age), AVG(sat) FROM Student GROUP BY college",
        repeats=10,
        name="B",
    )
    workload.add(
        "SELECT AVG(gpa) FROM Student "
        "WHERE college = 'Science' GROUP BY major",
        repeats=15,
        name="C",
    )
    return workload
