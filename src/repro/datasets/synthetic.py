"""Controllable synthetic strata for unit/property tests and ablations.

The paper's motivating examples reason about groups with chosen
``(n_i, mu_i, sigma_i)``; this module builds tables realizing exactly
those moments (normal or lognormal within groups), plus preset
heterogeneity scenarios used by the ablation benches.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.schema import DType
from ..engine.table import Column, Table

__all__ = [
    "make_grouped_table",
    "two_group_example",
    "heterogeneity_scenario",
]


def make_grouped_table(
    sizes: Sequence[int],
    means: Sequence[float],
    stds: Sequence[float],
    seed: int = 0,
    group_column: str = "g",
    value_column: str = "v",
    distribution: str = "normal",
    exact_moments: bool = False,
) -> Table:
    """One group per entry of ``sizes``/``means``/``stds``.

    With ``exact_moments=True`` each group's sample is affinely rescaled
    so its empirical mean/std match the request exactly — handy when a
    test's oracle is computed from the requested moments.
    """
    sizes = [int(s) for s in sizes]
    if not (len(sizes) == len(means) == len(stds)):
        raise ValueError("sizes, means, stds must have equal length")
    rng = np.random.default_rng(seed)
    groups: list = []
    values: list = []
    for gi, (n, mu, sigma) in enumerate(zip(sizes, means, stds)):
        if n <= 0:
            continue
        if distribution == "normal":
            data = rng.normal(mu, sigma, size=n)
        elif distribution == "lognormal":
            # Parameterized to hit the requested arithmetic moments.
            if mu <= 0:
                raise ValueError("lognormal groups need positive means")
            cv2 = (sigma / mu) ** 2 if mu else 0.0
            log_sigma = np.sqrt(np.log1p(cv2))
            log_mu = np.log(mu) - 0.5 * log_sigma**2
            data = rng.lognormal(log_mu, log_sigma, size=n)
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        if exact_moments and n > 1:
            current_std = data.std()
            if current_std > 0 and sigma > 0:
                data = (data - data.mean()) / current_std * sigma + mu
            else:
                data = np.full(n, mu, dtype=np.float64)
        elif exact_moments:
            data = np.full(n, mu, dtype=np.float64)
        groups.append(np.full(n, gi, dtype=np.int64))
        values.append(data)
    group_arr = (
        np.concatenate(groups) if groups else np.empty(0, dtype=np.int64)
    )
    value_arr = (
        np.concatenate(values) if values else np.empty(0, dtype=np.float64)
    )
    return Table(
        {
            group_column: Column(DType.INT64, group_arr),
            value_column: Column(
                DType.FLOAT64, value_arr.astype(np.float64)
            ),
        },
        name="synthetic",
    )


def two_group_example(seed: int = 0) -> Table:
    """The introduction's example: same sizes and means, sigma1 >> sigma2."""
    return make_grouped_table(
        sizes=[5000, 5000],
        means=[100.0, 100.0],
        stds=[50.0, 2.0],
        seed=seed,
        exact_moments=True,
    )


def heterogeneity_scenario(
    kind: str, num_groups: int = 20, seed: int = 0
) -> Table:
    """Preset scenarios for the allocation ablation bench.

    * ``"sizes"`` — equal moments, Zipf group sizes (frequency skew);
    * ``"variances"`` — equal sizes/means, stds spanning 100x;
    * ``"means"`` — equal sizes/stds, means spanning 100x (the paper's
      variance-vs-CV motivating example);
    * ``"mixed"`` — everything varies at once.
    """
    rng = np.random.default_rng(seed)
    if kind == "sizes":
        ranks = np.arange(1, num_groups + 1, dtype=np.float64)
        sizes = np.maximum((50_000 * ranks**-1.2).astype(int), 20)
        means = np.full(num_groups, 100.0)
        stds = np.full(num_groups, 20.0)
    elif kind == "variances":
        sizes = np.full(num_groups, 2000, dtype=int)
        means = np.full(num_groups, 100.0)
        stds = np.geomspace(1.0, 100.0, num_groups)
    elif kind == "means":
        sizes = np.full(num_groups, 2000, dtype=int)
        means = np.geomspace(10.0, 1000.0, num_groups)
        stds = np.full(num_groups, 20.0)
    elif kind == "mixed":
        ranks = rng.permutation(num_groups) + 1
        sizes = np.maximum((40_000 * ranks**-1.1).astype(int), 20)
        means = np.geomspace(10.0, 1000.0, num_groups)[
            rng.permutation(num_groups)
        ]
        stds = means * rng.uniform(0.1, 1.5, num_groups)
    else:
        raise ValueError(f"unknown scenario {kind!r}")
    return make_grouped_table(
        sizes=sizes, means=means, stds=stds, seed=seed, exact_moments=True
    )
