"""Concurrent serving front for the sample warehouse.

:class:`WarehouseService` glues the persistent store, the maintenance
pipeline and the AQP router into one thread-safe endpoint:

* **reads** (:meth:`query`) run concurrently under a read-write lock's
  shared side, route through an :class:`~repro.aqp.session.AQPSession`
  (sample routing + HT-weighted plans + compiled-plan cache), and are
  memoized in an LRU *answer* cache keyed by the store epoch — so a
  dashboard re-issuing the same SQL is a dictionary hit;
* **writes** (:meth:`build`, :meth:`refresh`, :meth:`register_table`)
  do their heavy lifting — two-pass builds, streaming ingests, store
  I/O — *outside* the write lock, then take it only for the in-memory
  swap: replace the routed sample, append the batch to the base table
  (so exact fallback stays consistent), bump the epoch, drop stale
  cached answers. Readers therefore block only for the swap, never for
  the sampling work; concurrent writers are serialized by a separate
  maintenance mutex.

Thread-safety note: the session's internal plan cache is shared by
concurrent readers; its mutations are benign under the GIL (worst case
a plan is compiled twice), while every structural change to tables or
samples happens under the exclusive side of the lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Sequence

from ..aqp.session import AQPResult, AQPSession, RouteDecision
from ..engine.groupcache import default_group_code_cache
from ..obs import default_registry, default_tracer
from ..engine.table import Table
from ..workload.model import Workload
from .advisor import AdvisorPlan, advise
from .contracts import (
    AccuracyContract,
    AccuracyContractViolation,
    ContractedResult,
    build_contract,
)
from .maintenance import (
    BuildReport,
    RefreshReport,
    SampleMaintainer,
    StalenessInfo,
    staleness_from_lineage,
    tracked_columns_from_lineage,
)
from .store import SampleStore, StoreEntryStats

__all__ = ["WarehouseService", "RWLock", "LRUCache"]

_TRACER = default_tracer()
_QUERIES = default_registry().counter(
    "repro_queries_total",
    "Queries answered by the warehouse, by route taken",
    ["route"],
)
_QUERY_SECONDS = default_registry().histogram(
    "repro_query_seconds",
    "End-to-end warehouse query latency in seconds",
)
_ANSWER_CACHE = default_registry().counter(
    "repro_answer_cache_total",
    "Answer-cache lookups by result",
    ["result"],
)


def _route_label(route: RouteDecision) -> str:
    return "sample" if route.approximate else "exact"


class RWLock:
    """Reader-writer lock, writer-preferring.

    Many readers may hold the lock at once; a writer waits for them to
    drain and blocks new readers while waiting (no writer starvation).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class LRUCache:
    """Small thread-safe LRU map for answered queries."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._entries[key] = value  # move to MRU end
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        """Atomic ``{size, capacity, hits, misses}`` snapshot.

        ``hits``/``misses``/size are mutated together under the cache
        lock; reading them as separate attribute accesses (as `/stats`
        once did) can observe a torn view mid-lookup during a version
        hot-swap. Always report them via this method.
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class WarehouseService:
    """Thread-safe query endpoint over a persistent sample warehouse.

    Construct with a store root (or :class:`SampleStore`) and a mapping
    of base tables; stored samples whose base table is registered are
    adopted immediately, the rest wait as orphans until
    :meth:`register_table` supplies their table. :meth:`query` answers
    SQL through the AQP router; :meth:`query_with_contract` additionally
    attaches a per-query :class:`~repro.warehouse.contracts.AccuracyContract`
    and enforces caller accuracy constraints. All public methods are
    safe to call from many threads; see the module docstring for the
    locking discipline.
    """

    def __init__(
        self,
        store,
        tables: Optional[Mapping[str, Table]] = None,
        cache_size: int = 128,
        cv_degradation_threshold: float = 1.5,
        keep_versions: int = 4,
        backend=None,
        cache_scope: str = "",
    ) -> None:
        self.store = (
            store
            if isinstance(store, SampleStore)
            else SampleStore(store, backend=backend)
        )
        self.maintainer = SampleMaintainer(
            self.store,
            cv_degradation_threshold=cv_degradation_threshold,
            keep_versions=keep_versions,
        )
        self._session = AQPSession(tables)
        # Distinguishes services sharing one process that serve
        # different row sets under the same (sample, version) — e.g.
        # in-process shard workers — in the group-code cache key.
        self._cache_scope = cache_scope
        self._lock = RWLock()
        self._maintenance = threading.Lock()  # serializes writers' work
        self._cache = LRUCache(cache_size)
        self._epoch = 0
        self._versions: Dict[str, str] = {}  # sample -> served version
        self._lineages: Dict[str, Dict] = {}  # sample -> served lineage
        self._orphans: Dict[str, str] = {}  # sample -> missing base table
        self.queries_served = 0
        self._warm_start()

    # ------------------------------------------------------------------
    # registration / building
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table; adopts any stored samples
        that were waiting for it."""
        with self._maintenance:
            adopted = [
                s for s, t in self._orphans.items() if t == name
            ]
            loaded = {s: self.store.get(s) for s in adopted}
            with self._lock.write():
                self._session.register_table(name, table)
                for sample_name, stored in loaded.items():
                    self._stamp_cache_token(sample_name, stored)
                    self._session.register_sample(
                        sample_name, stored.sample, name, replace=True
                    )
                    self._versions[sample_name] = stored.version
                    self._lineages[sample_name] = dict(stored.lineage)
                    del self._orphans[sample_name]
                self._bump()

    def build(
        self,
        name: str,
        table_name: str,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        seed: int = 0,
    ) -> BuildReport:
        """Two-pass build into the store, then swap it live."""
        with self._maintenance:
            with self._lock.read():
                table = self._session.tables.get(table_name)
            if table is None:
                raise KeyError(f"unknown base table {table_name!r}")
            report = self.maintainer.build(
                name,
                table,
                group_by=group_by,
                value_columns=value_columns,
                budget=budget,
                table_name=table_name,
                seed=seed,
            )
            stored = self.store.get(name, report.version)
            self._stamp_cache_token(name, stored)
            with self._lock.write():
                self._session.register_sample(
                    name, stored.sample, table_name, replace=True
                )
                self._versions[name] = report.version
                self._lineages[name] = dict(stored.lineage)
                self._bump()
        return report

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def refresh(
        self,
        name: str,
        batch: Table,
        seed: int = 0,
        columns: Optional[Sequence[str]] = None,
    ) -> RefreshReport:
        """Fold an appended batch into sample ``name`` and swap the new
        version live; the base table grows by ``batch`` too, so exact
        fallback keeps matching the sampled reality. ``columns``
        overrides the tracked value-column set for this and subsequent
        refreshes (default: the build-time lineage)."""
        with self._maintenance:
            stored = self.store.get(name)
            table_name = stored.table_name
            with self._lock.read():
                base = (
                    self._session.tables.get(table_name)
                    if table_name
                    else None
                )
            grown = base.concat(batch) if base is not None else None
            report = self.maintainer.refresh(
                name, batch, full_table=grown, seed=seed, columns=columns
            )
            fresh = self.store.get(name, report.version)
            self._stamp_cache_token(name, fresh)
            with self._lock.write():
                if grown is not None:
                    self._session.register_table(table_name, grown)
                if table_name and table_name in self._session.tables:
                    self._session.register_sample(
                        name, fresh.sample, table_name, replace=True
                    )
                    self._versions[name] = report.version
                    self._lineages[name] = dict(fresh.lineage)
                self._bump()
        return report

    def publish_stored(self, name: str, stored=None) -> bool:
        """Swap a store version of ``name`` live (current unless a
        :class:`~repro.warehouse.store.StoredSample` is given).

        This is the adoption half of :meth:`refresh` on its own, used
        by shard workers after an out-of-band store write (their own
        maintainer run, or a central rebuild pushed into the shard
        store) to hot-swap the new version without re-running the
        ingest. Returns ``True`` when the sample went live, ``False``
        when it stays orphaned (base table not registered).
        """
        with self._maintenance:
            if stored is None:
                stored = self.store.get(name)
            table_name = stored.table_name
            self._stamp_cache_token(name, stored)
            with self._lock.write():
                if table_name and table_name in self._session.tables:
                    self._session.register_sample(
                        name, stored.sample, table_name, replace=True
                    )
                    self._versions[name] = stored.version
                    self._lineages[name] = dict(stored.lineage)
                    self._orphans.pop(name, None)
                    live = True
                else:
                    self._orphans[name] = table_name or ""
                    live = False
                self._bump()
        return live

    def snapshot_sample(self, name: str):
        """Consistent ``(sample, version, lineage)`` snapshot of one
        live sample under the read lock. Versions are immutable, so the
        returned objects stay valid after a concurrent hot-swap."""
        with self._lock.read():
            sample = self._session.catalog.get(name)
            return (
                sample,
                self._versions.get(name),
                dict(self._lineages.get(name, {})),
            )

    def staleness(self, name: str) -> StalenessInfo:
        """Maintenance state of the current *stored* version of
        ``name`` (reads the store; raises :class:`KeyError` for unknown
        samples). See :meth:`served_lineages` for the in-memory view of
        what is being served."""
        return self.maintainer.staleness(name)

    # ------------------------------------------------------------------
    # advising
    # ------------------------------------------------------------------
    def advise(
        self,
        workload: Workload,
        table_name: str,
        storage_budget: int,
        target_cv: float = 0.05,
        materialize: bool = False,
        seed: int = 0,
    ) -> AdvisorPlan:
        """Recommend (and optionally build) samples for a workload."""
        with self._lock.read():
            table = self._session.tables.get(table_name)
        if table is None:
            raise KeyError(f"unknown base table {table_name!r}")
        plan = advise(
            workload, table, storage_budget, target_cv=target_cv
        )
        if materialize:
            for rec in plan.recommendations:
                cand = rec.candidate
                self.build(
                    rec.name,
                    table_name,
                    group_by=cand.attrs,
                    value_columns=cand.agg_columns,
                    budget=cand.budget,
                    seed=seed,
                )
        return plan

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, sql: str, mode: str = "auto") -> AQPResult:
        """Answer ``sql``; concurrent-safe, memoized per store epoch."""
        t0 = time.perf_counter()
        key = (self._epoch, mode, sql)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            _ANSWER_CACHE.inc(result="hit")
            _TRACER.annotate(answer_cache="hit")
            _QUERIES.inc(route="cached")
            _QUERY_SECONDS.observe(time.perf_counter() - t0)
            return cached
        _ANSWER_CACHE.inc(result="miss")
        _TRACER.annotate(answer_cache="miss")
        with self._lock.read():
            result = self._session.query(sql, mode=mode)
        self.queries_served += 1
        # A writer may have swapped while we executed; only cache
        # results that are still current.
        if key[0] == self._epoch:
            self._cache.put(key, result)
        _QUERIES.inc(route=_route_label(result.route))
        _QUERY_SECONDS.observe(time.perf_counter() - t0)
        return result

    def query_with_contract(
        self,
        sql: str,
        mode: str = "auto",
        max_cv: Optional[float] = None,
        max_staleness: Optional[float] = None,
        on_violation: str = "fallback",
    ) -> ContractedResult:
        """Answer ``sql`` with an accuracy contract attached.

        The contract (per-group predicted CV, served sample version,
        staleness, exact-fallback flag) is snapshotted under the same
        read lock as the execution, so it names exactly the version
        whose rows produced the answer — even while writers hot-swap
        versions concurrently.

        ``max_cv`` bounds the worst per-group predicted CV for the
        column(s) the query aggregates and ``max_staleness`` bounds the
        served sample's staleness ratio. ``max_cv`` is also handed to
        the router, which *prefers* a sample satisfying it on the
        queried columns over the globally-lowest-CV sample — exact
        fallback happens only when no stored sample qualifies. When the
        routed sample still violates a constraint, the query is re-run
        exactly (``on_violation="fallback"``, the default — exact
        answers satisfy any accuracy constraint) or rejected with
        :class:`AccuracyContractViolation` (``on_violation="reject"``,
        or ``mode="approx"`` where exact execution is not allowed).

        Thread-safe; memoized per store epoch like :meth:`query`.
        Raises :class:`ValueError` for a bad ``mode``/``on_violation``
        and propagates SQL errors from the engine.
        """
        if on_violation not in ("fallback", "reject"):
            raise ValueError("on_violation must be 'fallback' or 'reject'")
        t0 = time.perf_counter()
        key = ("contract", self._epoch, mode, sql, max_cv, max_staleness,
               on_violation)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            _ANSWER_CACHE.inc(result="hit")
            _TRACER.annotate(answer_cache="hit")
            _QUERIES.inc(route="cached")
            _QUERY_SECONDS.observe(time.perf_counter() - t0)
            return cached
        _ANSWER_CACHE.inc(result="miss")
        _TRACER.annotate(answer_cache="miss")
        route_label = "exact"
        with self._lock.read():
            result = self._session.query(sql, mode=mode, max_cv=max_cv)
            route_label = _route_label(result.route)
            with _TRACER.span("warehouse.contract"):
                contract, violations = self._contract_for(
                    result.route, mode, max_cv, max_staleness
                )
            if violations:
                if on_violation == "reject" or mode == "approx":
                    _QUERIES.inc(route="rejected")
                    raise AccuracyContractViolation(violations, contract)
                with _TRACER.span("warehouse.fallback_exact"):
                    result = self._session.query(sql, mode="exact")
                route_label = "fallback"
                contract = AccuracyContract(
                    executed="exact",
                    fallback_exact=True,
                    reason="accuracy constraints unsatisfied by stored "
                    "samples (" + "; ".join(violations) + "); executed "
                    "exactly",
                    constraints=contract.constraints,
                    satisfied=True,
                )
        self.queries_served += 1
        answer = ContractedResult(result=result, contract=contract)
        if key[1] == self._epoch:
            self._cache.put(key, answer)
        _QUERIES.inc(route=route_label)
        _QUERY_SECONDS.observe(time.perf_counter() - t0)
        return answer

    def execute(self, sql: str) -> Table:
        """Exact execution over the base tables; returns the answer
        :class:`~repro.engine.table.Table` (no routing provenance)."""
        return self.query(sql, mode="exact").table

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic swap counter; bumps on every structural change."""
        return self._epoch

    def samples(self) -> List[str]:
        """Names of the samples currently live in the router."""
        with self._lock.read():
            return self._session.samples()

    def served_versions(self) -> Dict[str, str]:
        """Snapshot of ``{sample name: served store version}``."""
        with self._lock.read():
            return dict(self._versions)

    def served_lineages(self) -> Dict[str, Dict]:
        """Snapshot of each served sample's lineage (staleness, drift,
        refresh history) — in-memory, no store I/O."""
        with self._lock.read():
            return {name: dict(li) for name, li in self._lineages.items()}

    def sample_summaries(self) -> List[Dict]:
        """One JSON-ready dict per live sample (version, shape,
        staleness, drift) from in-memory state — cheap enough to serve
        on every ``GET /samples`` without touching the store."""
        with self._lock.read():
            out = []
            for name in self._session.samples():
                sample = self._session.catalog.get(name)
                lineage = self._lineages.get(name, {})
                tracked = tracked_columns_from_lineage(
                    lineage, sample.allocation.stats
                )
                out.append(
                    {
                        "name": name,
                        "version": self._versions.get(name),
                        "rows": sample.num_rows,
                        "strata": sample.allocation.num_strata,
                        "by": list(sample.allocation.by),
                        "columns": tracked,
                        "primary_column": tracked[0] if tracked else None,
                        "staleness": staleness_from_lineage(lineage),
                        "drift": float(lineage.get("drift", 1.0)),
                        "drift_by_column": {
                            c: float(d)
                            for c, d in (
                                lineage.get("drift_by_column") or {}
                            ).items()
                        },
                        "needs_rebuild": bool(
                            lineage.get("needs_rebuild", False)
                        ),
                    }
                )
            return out

    def health(self) -> Dict:
        """Liveness snapshot (no store I/O) for ``GET /healthz``."""
        with self._lock.read():
            return {
                "status": "ok",
                "epoch": self._epoch,
                "tables": len(self._session.tables),
                "samples": len(self._versions),
                "queries_served": self.queries_served,
            }

    def stats(self) -> Dict:
        """Store accounting + serving counters in one snapshot."""
        entries: List[StoreEntryStats] = self.store.stats()
        store_info = {
            "root": str(self.store.root),
            "backend": getattr(self.store.backend, "name", "npz"),
            "manifest": self.store.manifest_position(),
        }
        with self._lock.read():
            session = self._session
            return {
                "epoch": self._epoch,
                "queries_served": self.queries_served,
                "store": store_info,
                "answer_cache": self._cache.counters(),
                "groupcode_cache": default_group_code_cache().counters(),
                "plan_cache": {
                    "hits": session.plan_cache_hits,
                    "misses": session.plan_cache_misses,
                },
                "tables": {
                    name: table.num_rows
                    for name, table in session.tables.items()
                },
                "samples": {
                    e.name: {
                        "version": e.current_version,
                        "served_version": self._versions.get(e.name),
                        "versions": e.num_versions,
                        "rows": e.rows,
                        "strata": e.strata,
                        "by": list(e.by),
                        "columns": dict(e.columns),
                        "method": e.method,
                        "backend": e.backend,
                        "bytes": e.bytes_on_disk,
                        "staleness": e.lineage.get("staleness", 0.0),
                        "needs_rebuild": e.lineage.get(
                            "needs_rebuild", False
                        ),
                    }
                    for e in entries
                },
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _contract_for(
        self,
        route: RouteDecision,
        mode: str,
        max_cv: Optional[float],
        max_staleness: Optional[float],
    ):
        """Contract + violation list for a routing decision.

        Caller must hold the read lock, so the version/lineage snapshot
        is consistent with the sample the route was computed against.
        """
        if not route.approximate:
            return build_contract(
                route, mode, max_cv, max_staleness,
                sample_version=None, lineage={}, staleness=0.0,
                group_keys=None,
            )
        name = route.sample_name
        lineage = self._lineages.get(name, {})
        sample = self._session.catalog.get(name)
        return build_contract(
            route, mode, max_cv, max_staleness,
            sample_version=self._versions.get(name),
            lineage=lineage,
            staleness=staleness_from_lineage(lineage),
            group_keys=tuple(tuple(k) for k in sample.allocation.keys),
        )

    def _warm_start(self) -> None:
        """Adopt every stored sample whose base table is registered.

        A sample with no readable version (e.g. memory-backend blobs
        from another process) is skipped rather than failing startup —
        the store keeps it for whoever can read it.
        """
        for name in self.store.names():
            try:
                stored = self.store.get(name)
            except KeyError:
                continue
            table_name = stored.table_name
            if table_name and table_name in self._session.tables:
                self._stamp_cache_token(name, stored)
                self._session.register_sample(
                    name, stored.sample, table_name, replace=True
                )
                self._versions[name] = stored.version
                self._lineages[name] = dict(stored.lineage)
            else:
                self._orphans[name] = table_name or ""

    def _stamp_cache_token(self, name: str, stored) -> None:
        """Mark one published sample version's table as immutable for
        the per-version group-code cache (:mod:`repro.engine.groupcache`).

        Each ``store.get`` loads a fresh :class:`Table`, so the stamp
        covers exactly one immutable incarnation; the version in the
        token keeps hot-swapped versions apart, and the scope keeps
        in-process shard workers (same name+version, different rows)
        apart.
        """
        stored.sample.table.cache_token = (
            self._cache_scope,
            name,
            stored.version,
        )

    def _bump(self) -> None:
        """Invalidate answers; caller must hold the write lock."""
        self._epoch += 1
        self._cache.clear()
