"""Concurrent serving front for the sample warehouse.

:class:`WarehouseService` glues the persistent store, the maintenance
pipeline and the AQP router into one thread-safe endpoint:

* **reads** (:meth:`query`) run concurrently under a read-write lock's
  shared side, route through an :class:`~repro.aqp.session.AQPSession`
  (sample routing + HT-weighted plans + compiled-plan cache), and are
  memoized in an LRU *answer* cache keyed by the store epoch — so a
  dashboard re-issuing the same SQL is a dictionary hit;
* **writes** (:meth:`build`, :meth:`refresh`, :meth:`register_table`)
  do their heavy lifting — two-pass builds, streaming ingests, store
  I/O — *outside* the write lock, then take it only for the in-memory
  swap: replace the routed sample, append the batch to the base table
  (so exact fallback stays consistent), bump the epoch, drop stale
  cached answers. Readers therefore block only for the swap, never for
  the sampling work; concurrent writers are serialized by a separate
  maintenance mutex.

Thread-safety note: the session's internal plan cache is shared by
concurrent readers; its mutations are benign under the GIL (worst case
a plan is compiled twice), while every structural change to tables or
samples happens under the exclusive side of the lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Sequence

from dataclasses import dataclass, field

from ..aqp.session import AQPResult, AQPSession, RouteDecision
from ..engine.groupcache import default_group_code_cache
from ..engine.sql.parser import parse_query
from ..engine.sql.planner import extract_time_bounds
from ..obs import default_registry, default_tracer
from ..engine.table import Table
from ..workload.model import Workload
from .advisor import AdvisorPlan, advise
from .contracts import (
    AccuracyContract,
    AccuracyContractViolation,
    ContractedResult,
    build_contract,
)
from .maintenance import (
    BuildReport,
    RefreshReport,
    SampleMaintainer,
    StalenessInfo,
    WindowedBuildReport,
    staleness_from_lineage,
    tracked_columns_from_lineage,
)
from .store import SampleStore, StoreEntryStats
from .windows import (
    SLIDE_SUFFIX,
    covering_window_starts,
    merge_window_samples,
    parse_window,
    parse_window_sample_name,
    partition_by_window,
    window_decay_factors,
    window_sample_name,
)

__all__ = [
    "WarehouseService",
    "WindowedRefreshReport",
    "RWLock",
    "LRUCache",
]

_TRACER = default_tracer()
_QUERIES = default_registry().counter(
    "repro_queries_total",
    "Queries answered by the warehouse, by route taken",
    ["route"],
)
_QUERY_SECONDS = default_registry().histogram(
    "repro_query_seconds",
    "End-to-end warehouse query latency in seconds",
)
_ANSWER_CACHE = default_registry().counter(
    "repro_answer_cache_total",
    "Answer-cache lookups by result",
    ["result"],
)


def _route_label(route: RouteDecision) -> str:
    return "sample" if route.approximate else "exact"


@dataclass
class WindowedRefreshReport:
    """Outcome of rolling a windowed family forward by one batch.

    Duck-types the ``action`` / ``version`` / ``rows_ingested`` fields
    of :class:`~repro.warehouse.maintenance.RefreshReport` so callers
    that only log the outcome (the maintenance daemon, the CLI) handle
    windowed and plain refreshes identically.
    """

    name: str  # family base name
    action: str = "windowed"
    version: Optional[str] = None  # newest open-window version touched
    rows_ingested: int = 0
    #: Window starts freshly built because the batch opened them.
    opened: List[int] = field(default_factory=list)
    #: Open-window starts incrementally refreshed in place.
    refreshed: List[int] = field(default_factory=list)
    #: Window starts dropped by retention this round.
    expired: List[int] = field(default_factory=list)
    #: Late rows addressed to already-closed windows. They still grow
    #: the base table (exact answers see them) but are *not* folded
    #: into the frozen window samples.
    frozen_rows: int = 0
    #: Underlying per-window reports, in processing order.
    reports: List = field(default_factory=list)


class RWLock:
    """Reader-writer lock, writer-preferring.

    Many readers may hold the lock at once; a writer waits for them to
    drain and blocks new readers while waiting (no writer starvation).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class LRUCache:
    """Small thread-safe LRU map for answered queries."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._entries.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._entries[key] = value  # move to MRU end
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        """Atomic ``{size, capacity, hits, misses}`` snapshot.

        ``hits``/``misses``/size are mutated together under the cache
        lock; reading them as separate attribute accesses (as `/stats`
        once did) can observe a torn view mid-lookup during a version
        hot-swap. Always report them via this method.
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class WarehouseService:
    """Thread-safe query endpoint over a persistent sample warehouse.

    Construct with a store root (or :class:`SampleStore`) and a mapping
    of base tables; stored samples whose base table is registered are
    adopted immediately, the rest wait as orphans until
    :meth:`register_table` supplies their table. :meth:`query` answers
    SQL through the AQP router; :meth:`query_with_contract` additionally
    attaches a per-query :class:`~repro.warehouse.contracts.AccuracyContract`
    and enforces caller accuracy constraints. All public methods are
    safe to call from many threads; see the module docstring for the
    locking discipline.
    """

    def __init__(
        self,
        store,
        tables: Optional[Mapping[str, Table]] = None,
        cache_size: int = 128,
        cv_degradation_threshold: float = 1.5,
        keep_versions: int = 4,
        backend=None,
        cache_scope: str = "",
    ) -> None:
        self.store = (
            store
            if isinstance(store, SampleStore)
            else SampleStore(store, backend=backend)
        )
        self.maintainer = SampleMaintainer(
            self.store,
            cv_degradation_threshold=cv_degradation_threshold,
            keep_versions=keep_versions,
        )
        self._session = AQPSession(tables)
        # Distinguishes services sharing one process that serve
        # different row sets under the same (sample, version) — e.g.
        # in-process shard workers — in the group-code cache key.
        self._cache_scope = cache_scope
        self._lock = RWLock()
        self._maintenance = threading.Lock()  # serializes writers' work
        self._cache = LRUCache(cache_size)
        self._epoch = 0
        self._versions: Dict[str, str] = {}  # sample -> served version
        self._lineages: Dict[str, Dict] = {}  # sample -> served lineage
        self._orphans: Dict[str, str] = {}  # sample -> missing base table
        #: Windowed sample families, keyed by base name. Each value
        #: holds the partitioning config and the retained members:
        #: ``{"column", "width", "decay", "retention", "table_name",
        #: "group_by", "value_columns", "budget",
        #: "windows": {start: version}}``. ``decay``/``retention`` are
        #: serving-time parameters declared at build time; a
        #: warm-started family defaults to no decay and unbounded
        #: retention until the next :meth:`build_windowed`.
        self._families: Dict[str, Dict] = {}
        #: Signature of each registered slide sample:
        #: ``base -> ((start, version), ...)`` it was merged from, so a
        #: repeat query over the same range skips the re-merge (and the
        #: epoch bump that would empty the answer cache).
        self._slides: Dict[str, tuple] = {}
        self.queries_served = 0
        self._warm_start()

    # ------------------------------------------------------------------
    # registration / building
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table; adopts any stored samples
        that were waiting for it."""
        with self._maintenance:
            adopted = [
                s for s, t in self._orphans.items() if t == name
            ]
            loaded = {s: self.store.get(s) for s in adopted}
            with self._lock.write():
                self._session.register_table(name, table)
                for sample_name, stored in loaded.items():
                    self._stamp_cache_token(sample_name, stored)
                    self._session.register_sample(
                        sample_name, stored.sample, name, replace=True
                    )
                    self._versions[sample_name] = stored.version
                    self._lineages[sample_name] = dict(stored.lineage)
                    del self._orphans[sample_name]
                self._bump()

    def build(
        self,
        name: str,
        table_name: str,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        seed: int = 0,
    ) -> BuildReport:
        """Two-pass build into the store, then swap it live."""
        with self._maintenance:
            with self._lock.read():
                table = self._session.tables.get(table_name)
            if table is None:
                raise KeyError(f"unknown base table {table_name!r}")
            report = self.maintainer.build(
                name,
                table,
                group_by=group_by,
                value_columns=value_columns,
                budget=budget,
                table_name=table_name,
                seed=seed,
            )
            stored = self.store.get(name, report.version)
            self._stamp_cache_token(name, stored)
            with self._lock.write():
                self._session.register_sample(
                    name, stored.sample, table_name, replace=True
                )
                self._versions[name] = report.version
                self._lineages[name] = dict(stored.lineage)
                self._bump()
        return report

    def build_windowed(
        self,
        name: str,
        table_name: str,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        ts_column: str,
        window: str,
        decay: Optional[float] = None,
        retention: Optional[int] = None,
        seed: int = 0,
    ) -> WindowedBuildReport:
        """Build a *windowed family*: one store member per tumbling
        window of ``ts_column``, all swapped live at once.

        ``window`` is a width spec (``"1h"``, ``"30m"``, ``3600``);
        ``budget`` is per window. ``decay`` (0 < decay <= 1) applies
        exponential age-weighting when sliding-window queries merge
        windows — each window older than the newest is scaled by
        ``decay`` per window of age. ``retention`` keeps only the
        newest N windows; refreshes prune older members and queries
        reaching below the horizon are rejected on the contract path
        (HTTP 412). Queries with a ``WHERE ts_column >= ... [AND <
        ...]`` predicate covered by retained windows route to the
        member (single window) or to a merged slide sample
        (:data:`~repro.warehouse.windows.SLIDE_SUFFIX`) whose
        per-(stratum, column) moments are summed exactly.
        """
        if decay is not None and not (0.0 < float(decay) <= 1.0):
            raise ValueError("decay must be in (0, 1]")
        if retention is not None and int(retention) < 1:
            raise ValueError("retention must be >= 1 window")
        with self._maintenance:
            with self._lock.read():
                table = self._session.tables.get(table_name)
            if table is None:
                raise KeyError(f"unknown base table {table_name!r}")
            report = self.maintainer.build_windowed(
                name,
                table,
                group_by=group_by,
                value_columns=value_columns,
                budget=budget,
                ts_column=ts_column,
                window=window,
                table_name=table_name,
                seed=seed,
            )
            width = report.width
            family = {
                "column": ts_column,
                "width": width,
                "decay": float(decay) if decay is not None else None,
                "retention": int(retention) if retention else None,
                "table_name": table_name,
                "group_by": list(group_by),
                "value_columns": list(dict.fromkeys(value_columns)),
                "budget": int(budget),
                "windows": {},
            }
            keep = sorted(report.starts)
            expired: List[int] = []
            if retention and len(keep) > int(retention):
                expired = keep[: -int(retention)]
                keep = keep[-int(retention):]
            loaded = {}
            for window_report in report.windows:
                start = int(window_report.name.rsplit("@w", 1)[1])
                if start in expired:
                    continue
                loaded[start] = self.store.get(
                    window_report.name, window_report.version
                )
            with self._lock.write():
                for start in keep:
                    stored = loaded[start]
                    member = window_sample_name(name, start)
                    self._stamp_cache_token(member, stored)
                    self._session.register_sample(
                        member,
                        stored.sample,
                        table_name,
                        replace=True,
                        window={
                            "column": ts_column,
                            "start": start,
                            "end": start + width,
                        },
                    )
                    self._versions[member] = stored.version
                    self._lineages[member] = dict(stored.lineage)
                    family["windows"][start] = stored.version
                self._drop_slide_locked(name)
                self._families[name] = family
                self._bump()
            for start in expired:
                self.store.delete(window_sample_name(name, start))
        return report

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def refresh(
        self,
        name: str,
        batch: Table,
        seed: int = 0,
        columns: Optional[Sequence[str]] = None,
    ) -> RefreshReport:
        """Fold an appended batch into sample ``name`` and swap the new
        version live; the base table grows by ``batch`` too, so exact
        fallback keeps matching the sampled reality. ``columns``
        overrides the tracked value-column set for this and subsequent
        refreshes (default: the build-time lineage).

        When ``name`` is a windowed family base, the batch is instead
        partitioned by the family's timestamp column and rolled
        forward window by window (see :meth:`_refresh_windowed`);
        the return value is then a :class:`WindowedRefreshReport`."""
        if name in self._families:
            return self._refresh_windowed(name, batch, seed=seed)
        with self._maintenance:
            stored = self.store.get(name)
            table_name = stored.table_name
            with self._lock.read():
                base = (
                    self._session.tables.get(table_name)
                    if table_name
                    else None
                )
            grown = base.concat(batch) if base is not None else None
            report = self.maintainer.refresh(
                name, batch, full_table=grown, seed=seed, columns=columns
            )
            fresh = self.store.get(name, report.version)
            self._stamp_cache_token(name, fresh)
            with self._lock.write():
                if grown is not None:
                    self._session.register_table(table_name, grown)
                if table_name and table_name in self._session.tables:
                    self._session.register_sample(
                        name, fresh.sample, table_name, replace=True
                    )
                    self._versions[name] = report.version
                    self._lineages[name] = dict(fresh.lineage)
                self._bump()
        return report

    def _refresh_windowed(
        self, name: str, batch: Table, seed: int = 0
    ) -> WindowedRefreshReport:
        """Roll windowed family ``name`` forward by one batch.

        Batch rows are partitioned by the family's timestamp column:

        * rows in the **newest retained window** refresh that member
          incrementally (streaming resume, moments merged exactly);
        * rows **past** it open fresh windows (full per-window builds
          at the family budget);
        * rows addressed to an already-**closed** window are frozen
          out of the sample — they still grow the base table, so exact
          answers (and ``WHERE`` re-filters) see them, but a closed
          window's published moments never move;
        * with ``retention`` set, members that fall off the horizon
          are dropped from routing and deleted from the store.
        """
        family = self._families[name]
        column = family["column"]
        width = family["width"]
        with self._maintenance:
            if column not in batch:
                raise ValueError(
                    f"windowed family {name!r} partitions on column "
                    f"{column!r}, which the batch does not carry"
                )
            report = WindowedRefreshReport(
                name=name, rows_ingested=batch.num_rows
            )
            newest = max(family["windows"], default=None)
            fresh_parts = []
            for start, part in partition_by_window(
                batch, column, width
            ).items():
                if newest is not None and start < newest:
                    report.frozen_rows += part.num_rows
                elif start in family["windows"]:
                    member = window_sample_name(name, start)
                    sub = self.maintainer.refresh(
                        member, part, seed=seed,
                        columns=family["value_columns"],
                    )
                    report.refreshed.append(start)
                    report.reports.append(sub)
                    report.version = sub.version
                else:
                    fresh_parts.append(part)
            if fresh_parts:
                fresh = fresh_parts[0]
                for part in fresh_parts[1:]:
                    fresh = fresh.concat(part)
                built = self.maintainer.build_windowed(
                    name,
                    fresh,
                    group_by=family["group_by"],
                    value_columns=family["value_columns"],
                    budget=family["budget"],
                    ts_column=column,
                    window=width,
                    table_name=family["table_name"],
                    seed=seed,
                )
                report.opened.extend(built.starts)
                report.reports.extend(built.windows)
                if built.windows:
                    report.version = built.windows[-1].version
            touched = list(report.refreshed) + list(report.opened)
            loaded = {
                start: self.store.get(window_sample_name(name, start))
                for start in touched
            }
            retention = family.get("retention")
            horizon = max(
                set(family["windows"]) | set(report.opened), default=None
            )
            expired = []
            if retention and horizon is not None:
                floor = horizon - (int(retention) - 1) * width
                expired = sorted(
                    s
                    for s in set(family["windows"]) | set(report.opened)
                    if s < floor
                )
            report.expired = expired
            table_name = family["table_name"]
            with self._lock.read():
                base = self._session.tables.get(table_name)
            grown = base.concat(batch) if base is not None else None
            with self._lock.write():
                if grown is not None:
                    self._session.register_table(table_name, grown)
                serving = bool(
                    table_name and table_name in self._session.tables
                )
                for start in touched:
                    if start in expired:
                        continue
                    stored = loaded[start]
                    member = window_sample_name(name, start)
                    if serving:
                        self._stamp_cache_token(member, stored)
                        self._session.register_sample(
                            member,
                            stored.sample,
                            table_name,
                            replace=True,
                            window={
                                "column": column,
                                "start": start,
                                "end": start + width,
                            },
                        )
                        self._versions[member] = stored.version
                        self._lineages[member] = dict(stored.lineage)
                    else:
                        # No base table here (maintenance-only process):
                        # the store write is the durable outcome, the
                        # member just stays orphaned for serving.
                        self._orphans[member] = table_name or ""
                    family["windows"][start] = stored.version
                for start in expired:
                    member = window_sample_name(name, start)
                    if member in self._versions:
                        self._session.drop_sample(member)
                    family["windows"].pop(start, None)
                    self._versions.pop(member, None)
                    self._lineages.pop(member, None)
                    self._orphans.pop(member, None)
                self._drop_slide_locked(name)
                self._bump()
            for start in expired:
                self.store.delete(window_sample_name(name, start))
        return report

    def publish_stored(self, name: str, stored=None) -> bool:
        """Swap a store version of ``name`` live (current unless a
        :class:`~repro.warehouse.store.StoredSample` is given).

        This is the adoption half of :meth:`refresh` on its own, used
        by shard workers after an out-of-band store write (their own
        maintainer run, or a central rebuild pushed into the shard
        store) to hot-swap the new version without re-running the
        ingest. Returns ``True`` when the sample went live, ``False``
        when it stays orphaned (base table not registered).
        """
        with self._maintenance:
            if stored is None:
                stored = self.store.get(name)
            table_name = stored.table_name
            self._stamp_cache_token(name, stored)
            window = getattr(stored, "window", None)
            with self._lock.write():
                if table_name and table_name in self._session.tables:
                    self._session.register_sample(
                        name, stored.sample, table_name, replace=True,
                        window=window,
                    )
                    self._versions[name] = stored.version
                    self._lineages[name] = dict(stored.lineage)
                    self._orphans.pop(name, None)
                    if window is not None:
                        self._adopt_window_member(name, stored, window)
                    live = True
                else:
                    self._orphans[name] = table_name or ""
                    live = False
                self._bump()
        return live

    def snapshot_sample(self, name: str):
        """Consistent ``(sample, version, lineage)`` snapshot of one
        live sample under the read lock. Versions are immutable, so the
        returned objects stay valid after a concurrent hot-swap."""
        with self._lock.read():
            sample = self._session.catalog.get(name)
            return (
                sample,
                self._versions.get(name),
                dict(self._lineages.get(name, {})),
            )

    def staleness(self, name: str) -> StalenessInfo:
        """Maintenance state of the current *stored* version of
        ``name`` (reads the store; raises :class:`KeyError` for unknown
        samples). See :meth:`served_lineages` for the in-memory view of
        what is being served."""
        return self.maintainer.staleness(name)

    # ------------------------------------------------------------------
    # advising
    # ------------------------------------------------------------------
    def advise(
        self,
        workload: Workload,
        table_name: str,
        storage_budget: int,
        target_cv: float = 0.05,
        materialize: bool = False,
        seed: int = 0,
    ) -> AdvisorPlan:
        """Recommend (and optionally build) samples for a workload."""
        with self._lock.read():
            table = self._session.tables.get(table_name)
        if table is None:
            raise KeyError(f"unknown base table {table_name!r}")
        plan = advise(
            workload, table, storage_budget, target_cv=target_cv
        )
        if materialize:
            for rec in plan.recommendations:
                cand = rec.candidate
                self.build(
                    rec.name,
                    table_name,
                    group_by=cand.attrs,
                    value_columns=cand.agg_columns,
                    budget=cand.budget,
                    seed=seed,
                )
        return plan

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, sql: str, mode: str = "auto") -> AQPResult:
        """Answer ``sql``; concurrent-safe, memoized per store epoch."""
        t0 = time.perf_counter()
        self._ensure_slide(sql)
        key = (self._epoch, mode, sql)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            _ANSWER_CACHE.inc(result="hit")
            _TRACER.annotate(answer_cache="hit")
            _QUERIES.inc(route="cached")
            _QUERY_SECONDS.observe(time.perf_counter() - t0)
            return cached
        _ANSWER_CACHE.inc(result="miss")
        _TRACER.annotate(answer_cache="miss")
        with self._lock.read():
            result = self._session.query(sql, mode=mode)
        self.queries_served += 1
        # A writer may have swapped while we executed; only cache
        # results that are still current.
        if key[0] == self._epoch:
            self._cache.put(key, result)
        _QUERIES.inc(route=_route_label(result.route))
        _QUERY_SECONDS.observe(time.perf_counter() - t0)
        return result

    def query_with_contract(
        self,
        sql: str,
        mode: str = "auto",
        max_cv: Optional[float] = None,
        max_staleness: Optional[float] = None,
        on_violation: str = "fallback",
    ) -> ContractedResult:
        """Answer ``sql`` with an accuracy contract attached.

        The contract (per-group predicted CV, served sample version,
        staleness, exact-fallback flag) is snapshotted under the same
        read lock as the execution, so it names exactly the version
        whose rows produced the answer — even while writers hot-swap
        versions concurrently.

        ``max_cv`` bounds the worst per-group predicted CV for the
        column(s) the query aggregates and ``max_staleness`` bounds the
        served sample's staleness ratio. ``max_cv`` is also handed to
        the router, which *prefers* a sample satisfying it on the
        queried columns over the globally-lowest-CV sample — exact
        fallback happens only when no stored sample qualifies. When the
        routed sample still violates a constraint, the query is re-run
        exactly (``on_violation="fallback"``, the default — exact
        answers satisfy any accuracy constraint) or rejected with
        :class:`AccuracyContractViolation` (``on_violation="reject"``,
        or ``mode="approx"`` where exact execution is not allowed).

        Thread-safe; memoized per store epoch like :meth:`query`.
        Raises :class:`ValueError` for a bad ``mode``/``on_violation``
        and propagates SQL errors from the engine.
        """
        if on_violation not in ("fallback", "reject"):
            raise ValueError("on_violation must be 'fallback' or 'reject'")
        t0 = time.perf_counter()
        below_retention = self._ensure_slide(sql)
        if below_retention is not None and (
            on_violation == "reject" or mode == "approx"
        ):
            # The requested time range reaches below the windowed
            # family's retention horizon: no retained sample can speak
            # for those rows, and the caller refused exact fallback.
            constraints: Dict[str, float] = {}
            if max_cv is not None:
                constraints["max_cv"] = float(max_cv)
            if max_staleness is not None:
                constraints["max_staleness"] = float(max_staleness)
            _QUERIES.inc(route="rejected")
            raise AccuracyContractViolation(
                [below_retention],
                AccuracyContract(
                    executed="exact",
                    fallback_exact=False,
                    reason=below_retention,
                    constraints=constraints,
                    satisfied=False,
                ),
            )
        key = ("contract", self._epoch, mode, sql, max_cv, max_staleness,
               on_violation)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            _ANSWER_CACHE.inc(result="hit")
            _TRACER.annotate(answer_cache="hit")
            _QUERIES.inc(route="cached")
            _QUERY_SECONDS.observe(time.perf_counter() - t0)
            return cached
        _ANSWER_CACHE.inc(result="miss")
        _TRACER.annotate(answer_cache="miss")
        route_label = "exact"
        with self._lock.read():
            result = self._session.query(sql, mode=mode, max_cv=max_cv)
            route_label = _route_label(result.route)
            with _TRACER.span("warehouse.contract"):
                contract, violations = self._contract_for(
                    result.route, mode, max_cv, max_staleness
                )
            if violations:
                if on_violation == "reject" or mode == "approx":
                    _QUERIES.inc(route="rejected")
                    raise AccuracyContractViolation(violations, contract)
                with _TRACER.span("warehouse.fallback_exact"):
                    result = self._session.query(sql, mode="exact")
                route_label = "fallback"
                contract = AccuracyContract(
                    executed="exact",
                    fallback_exact=True,
                    reason="accuracy constraints unsatisfied by stored "
                    "samples (" + "; ".join(violations) + "); executed "
                    "exactly",
                    constraints=contract.constraints,
                    satisfied=True,
                )
        self.queries_served += 1
        answer = ContractedResult(result=result, contract=contract)
        if key[1] == self._epoch:
            self._cache.put(key, answer)
        _QUERIES.inc(route=route_label)
        _QUERY_SECONDS.observe(time.perf_counter() - t0)
        return answer

    def execute(self, sql: str) -> Table:
        """Exact execution over the base tables; returns the answer
        :class:`~repro.engine.table.Table` (no routing provenance)."""
        return self.query(sql, mode="exact").table

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic swap counter; bumps on every structural change."""
        return self._epoch

    def samples(self) -> List[str]:
        """Names of the samples currently live in the router."""
        with self._lock.read():
            return self._session.samples()

    def served_versions(self) -> Dict[str, str]:
        """Snapshot of ``{sample name: served store version}``."""
        with self._lock.read():
            return dict(self._versions)

    def served_lineages(self) -> Dict[str, Dict]:
        """Snapshot of each served sample's lineage (staleness, drift,
        refresh history) — in-memory, no store I/O."""
        with self._lock.read():
            return {name: dict(li) for name, li in self._lineages.items()}

    def sample_summaries(self) -> List[Dict]:
        """One JSON-ready dict per live sample (version, shape,
        staleness, drift) from in-memory state — cheap enough to serve
        on every ``GET /samples`` without touching the store."""
        with self._lock.read():
            out = []
            for name in self._session.samples():
                sample = self._session.catalog.get(name)
                lineage = self._lineages.get(name, {})
                tracked = tracked_columns_from_lineage(
                    lineage, sample.allocation.stats
                )
                out.append(
                    {
                        "name": name,
                        "version": self._versions.get(name),
                        "window": self._session.sample_window(name),
                        "rows": sample.num_rows,
                        "strata": sample.allocation.num_strata,
                        "by": list(sample.allocation.by),
                        "columns": tracked,
                        "primary_column": tracked[0] if tracked else None,
                        "staleness": staleness_from_lineage(lineage),
                        "drift": float(lineage.get("drift", 1.0)),
                        "drift_by_column": {
                            c: float(d)
                            for c, d in (
                                lineage.get("drift_by_column") or {}
                            ).items()
                        },
                        "needs_rebuild": bool(
                            lineage.get("needs_rebuild", False)
                        ),
                    }
                )
            return out

    def health(self) -> Dict:
        """Liveness snapshot (no store I/O) for ``GET /healthz``."""
        with self._lock.read():
            return {
                "status": "ok",
                "epoch": self._epoch,
                "tables": len(self._session.tables),
                "samples": len(self._versions),
                "queries_served": self.queries_served,
            }

    def stats(self) -> Dict:
        """Store accounting + serving counters in one snapshot."""
        entries: List[StoreEntryStats] = self.store.stats()
        store_info = {
            "root": str(self.store.root),
            "backend": getattr(self.store.backend, "name", "npz"),
            "manifest": self.store.manifest_position(),
        }
        with self._lock.read():
            session = self._session
            return {
                "epoch": self._epoch,
                "queries_served": self.queries_served,
                "store": store_info,
                "answer_cache": self._cache.counters(),
                "groupcode_cache": default_group_code_cache().counters(),
                "plan_cache": {
                    "hits": session.plan_cache_hits,
                    "misses": session.plan_cache_misses,
                },
                "tables": {
                    name: table.num_rows
                    for name, table in session.tables.items()
                },
                "samples": {
                    e.name: {
                        "version": e.current_version,
                        "served_version": self._versions.get(e.name),
                        "versions": e.num_versions,
                        "rows": e.rows,
                        "strata": e.strata,
                        "by": list(e.by),
                        "columns": dict(e.columns),
                        "method": e.method,
                        "backend": e.backend,
                        "bytes": e.bytes_on_disk,
                        "staleness": e.lineage.get("staleness", 0.0),
                        "needs_rebuild": e.lineage.get(
                            "needs_rebuild", False
                        ),
                    }
                    for e in entries
                },
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _contract_for(
        self,
        route: RouteDecision,
        mode: str,
        max_cv: Optional[float],
        max_staleness: Optional[float],
    ):
        """Contract + violation list for a routing decision.

        Caller must hold the read lock, so the version/lineage snapshot
        is consistent with the sample the route was computed against.
        """
        if not route.approximate:
            return build_contract(
                route, mode, max_cv, max_staleness,
                sample_version=None, lineage={}, staleness=0.0,
                group_keys=None,
            )
        name = route.sample_name
        lineage = self._lineages.get(name, {})
        sample = self._session.catalog.get(name)
        return build_contract(
            route, mode, max_cv, max_staleness,
            sample_version=self._versions.get(name),
            lineage=lineage,
            staleness=staleness_from_lineage(lineage),
            group_keys=tuple(tuple(k) for k in sample.allocation.keys),
            window_bounds=route.window_bounds,
        )

    def _ensure_slide(self, sql: str) -> Optional[str]:
        """Materialize the merged sliding-window sample ``sql`` needs.

        Called before every query while windowed families exist. When
        the query's WHERE clause pins a time range on a family's
        timestamp column and the retained windows cover it, the
        covering members are merged (moments summed exactly, decay
        applied when the family declares it) and registered as
        ``<base>@slide`` so the router can pick it; a repeat query over
        the same range reuses the previous merge via the
        ``(start, version)`` signature and changes nothing.

        Returns a violation message when the range reaches *below* the
        retention horizon (the contract path turns that into a 412),
        otherwise ``None`` — ranges beyond the newest window or over a
        gap simply fall back to exact, which still has every row.
        """
        if not self._families:
            return None
        try:
            parsed = parse_query(sql)
        except Exception:
            return None  # let the session raise the real error
        table_ref = getattr(parsed.from_clause, "name", None)
        for base, family in list(self._families.items()):
            if table_ref != family["table_name"]:
                continue
            bounds = extract_time_bounds(parsed, family["column"])
            if bounds is None:
                continue
            lo, hi = bounds
            if lo is None:
                continue  # unbounded past: would need every window ever
            with self._lock.read():
                retained = sorted(family["windows"])
            if not retained:
                continue
            width = family["width"]
            horizon = retained[-1] + width
            if lo < retained[0]:
                hi_text = hi if hi is not None else "now"
                return (
                    f"time range [{lo}, {hi_text}) on "
                    f"{family['column']!r} reaches below the retention "
                    f"horizon of windowed sample {base!r} (oldest "
                    f"retained window starts at {retained[0]})"
                )
            hi_eff = hi if hi is not None else horizon
            if hi_eff <= lo or hi_eff > horizon:
                continue  # empty or not-yet-sampled range: exact
            needed = covering_window_starts(lo, hi_eff, width)
            if any(start not in family["windows"] for start in needed):
                continue  # gap window: exact fallback
            if len(needed) > 1:
                self._materialize_slide(base, family, needed)
        return None

    def _materialize_slide(
        self, base: str, family: Dict, starts: Sequence[int]
    ) -> None:
        """Merge the members at ``starts`` into the family's slide
        sample and swap it live (no-op when the registered slide was
        merged from exactly these versions)."""
        slide = base + SLIDE_SUFFIX
        with self._lock.read():
            signature = tuple(
                (start, family["windows"].get(start)) for start in starts
            )
        if any(v is None for _, v in signature):
            return  # member expired between check and merge
        if self._slides.get(slide) == signature:
            return
        with self._maintenance:
            signature = tuple(
                (start, family["windows"].get(start)) for start in starts
            )
            if any(v is None for _, v in signature):
                return
            if self._slides.get(slide) == signature:
                return
            members = [
                self.store.get(window_sample_name(base, start), version)
                for start, version in signature
            ]
            factors = None
            if family.get("decay"):
                by_start = window_decay_factors(
                    [start for start, _ in signature],
                    family["width"],
                    family["decay"],
                )
                factors = [by_start[start] for start, _ in signature]
            merged = merge_window_samples(
                [m.sample for m in members], factors=factors
            )
            width = family["width"]
            window_block = {
                "column": family["column"],
                "start": int(signature[0][0]),
                "end": int(signature[-1][0]) + width,
            }
            version = "+".join(version for _, version in signature)
            lineage = {
                "action": "window-merge",
                "window": dict(window_block),
                "windows": [start for start, _ in signature],
                "value_columns": list(family["value_columns"]),
                "drift": max(
                    float(m.lineage.get("drift", 1.0)) for m in members
                ),
                "needs_rebuild": any(
                    bool(m.lineage.get("needs_rebuild"))
                    for m in members
                ),
            }
            event_ts = [
                m.lineage.get("max_event_ts")
                for m in members
                if m.lineage.get("max_event_ts") is not None
            ]
            if event_ts:
                lineage["max_event_ts"] = int(max(event_ts))
            merged.table.cache_token = (self._cache_scope, slide, version)
            with self._lock.write():
                self._session.register_sample(
                    slide,
                    merged,
                    family["table_name"],
                    replace=True,
                    window=window_block,
                )
                self._versions[slide] = version
                self._lineages[slide] = lineage
                self._slides[slide] = signature
                self._bump()

    def _drop_slide_locked(self, base: str) -> None:
        """Unregister the family's slide sample (members changed, so
        the merge is stale). Caller holds the write lock."""
        slide = base + SLIDE_SUFFIX
        if slide in self._slides:
            self._session.drop_sample(slide)
            self._slides.pop(slide, None)
            self._versions.pop(slide, None)
            self._lineages.pop(slide, None)

    def _warm_start(self) -> None:
        """Adopt every stored sample whose base table is registered.

        A sample with no readable version (e.g. memory-backend blobs
        from another process) is skipped rather than failing startup —
        the store keeps it for whoever can read it. Window members
        (format-4 metas carrying a ``window`` block) are additionally
        folded back into their family registry so sliding-window
        routing survives a restart.

        With the mmap backend the ``store.get`` here is O(metadata):
        sample tables come back lazy and no column bytes are read until
        a query touches them, so warm start (and the daemon's version
        hot-swap, which rides the same path) costs parse-the-sidecar
        per sample regardless of row counts.
        """
        for name in self.store.names():
            try:
                stored = self.store.get(name)
            except KeyError:
                continue
            table_name = stored.table_name
            if table_name and table_name in self._session.tables:
                self._stamp_cache_token(name, stored)
                window = getattr(stored, "window", None)
                self._session.register_sample(
                    name, stored.sample, table_name, replace=True,
                    window=window,
                )
                self._versions[name] = stored.version
                self._lineages[name] = dict(stored.lineage)
                if window is not None:
                    self._adopt_window_member(name, stored, window)
            else:
                self._orphans[name] = table_name or ""
                # Family bookkeeping must survive orphaning: refresh
                # rolls windows forward purely against the store, so a
                # maintenance-only process (no base table registered —
                # e.g. ``warehouse refresh`` from the CLI) still needs
                # the family registry to route the batch by window.
                window = getattr(stored, "window", None)
                if window is not None:
                    self._adopt_window_member(name, stored, window)

    def _adopt_window_member(
        self, name: str, stored, window: Dict
    ) -> None:
        """Fold one stored window member into its family registry.

        Family-level build parameters (group-by, tracked columns,
        per-window budget) are recovered from the member itself so a
        restarted service can keep opening new windows on refresh.
        """
        parsed = parse_window_sample_name(name)
        base = parsed[0] if parsed else name
        family = self._families.setdefault(
            base,
            {
                "column": str(window["column"]),
                "width": int(window["width"]),
                "decay": None,
                "retention": None,
                "table_name": stored.table_name,
                "group_by": list(stored.sample.allocation.by),
                "value_columns": tracked_columns_from_lineage(
                    stored.lineage, stored.sample.allocation.stats
                ),
                "budget": int(stored.sample.budget),
                "windows": {},
            },
        )
        family["windows"][int(window["start"])] = stored.version

    def _stamp_cache_token(self, name: str, stored) -> None:
        """Mark one published sample version's table as immutable for
        the per-version group-code cache (:mod:`repro.engine.groupcache`).

        Each ``store.get`` loads a fresh :class:`Table`, so the stamp
        covers exactly one immutable incarnation; the version in the
        token keeps hot-swapped versions apart, and the scope keeps
        in-process shard workers (same name+version, different rows)
        apart.
        """
        stored.sample.table.cache_token = (
            self._cache_scope,
            name,
            stored.version,
        )

    def _bump(self) -> None:
        """Invalidate answers; caller must hold the write lock."""
        self._epoch += 1
        self._cache.clear()
