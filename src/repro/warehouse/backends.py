"""Pluggable physical storage for sample rows.

The :class:`~repro.warehouse.store.SampleStore` owns naming, versioning,
metadata, the manifest log and cross-process locks; a
:class:`StorageBackend` owns only the *rows blob* inside one version
directory. Every version's ``meta.json`` records which backend/format
wrote its rows (a ``storage`` block), so a store may hold versions in
mixed formats and any store instance can read all of them regardless of
its own default backend — decode dispatches on the stored format, not
on the configured backend.

Built-in backends (``docs/STORAGE.md`` has the full matrix):

``npz`` (:class:`NpzBackend`)
    The default: ``rows.npz`` via :meth:`Table.save`, dtypes and
    dictionary categories intact. No extra dependencies.
``parquet`` (:class:`ParquetArrowBackend`)
    ``rows.parquet`` via pyarrow — string columns as dictionary arrays,
    logical dtypes in the Arrow schema metadata. When pyarrow is not
    installed the backend degrades gracefully: writes land as npz
    (recorded as such in the ``storage`` block, so they stay readable
    everywhere) instead of failing, unless constructed with
    ``strict=True``.
``memory`` (:class:`MemoryBackend`)
    Rows live in a process-wide dict keyed by version path; only a tiny
    JSON marker file lands on disk. For tests and benchmarks — blobs do
    not survive the process.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from ..engine.schema import DType
from ..engine.table import Column, Table

__all__ = [
    "StorageBackend",
    "NpzBackend",
    "ParquetArrowBackend",
    "MemoryBackend",
    "BACKENDS",
    "resolve_backend",
    "backend_for_format",
    "available_backends",
    "infer_storage",
]


@runtime_checkable
class StorageBackend(Protocol):
    """What the store needs from a physical rows format.

    A backend reads and writes one opaque blob per version directory;
    ``put_rows`` returns the ``storage`` block persisted in that
    version's ``meta.json`` (at minimum ``backend``, ``format`` and
    ``rows_file``; the built-ins also record the rows schema as
    ``columns`` so operators can inspect what a blob holds without
    decoding it), and ``get_rows`` must be able to decode any blob
    whose block names its format.
    """

    name: str

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        """Write ``table``'s rows into ``version_dir``; returns the
        ``storage`` block describing what was written."""
        ...

    def get_rows(self, version_dir: pathlib.Path, storage: Dict) -> Table:
        """Load the rows blob described by ``storage``."""
        ...

    def list(self, version_dir: pathlib.Path) -> List[str]:
        """Blob file names this backend recognizes in ``version_dir``."""
        ...

    def delete(self, version_dir: pathlib.Path) -> None:
        """Release backend-side resources for one version (called
        before the version directory itself is removed)."""
        ...


class NpzBackend:
    """Default backend: compressed npz via :meth:`Table.save`."""

    name = "npz"
    rows_file = "rows.npz"

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        table.save(version_dir / self.rows_file)
        return {
            "backend": self.name,
            "format": "npz",
            "rows_file": self.rows_file,
            "columns": list(table.column_names),
        }

    def get_rows(self, version_dir: pathlib.Path, storage: Dict) -> Table:
        return Table.load(version_dir / storage.get("rows_file", self.rows_file))

    def list(self, version_dir: pathlib.Path) -> List[str]:
        return [
            p.name for p in version_dir.glob("rows.npz") if p.is_file()
        ]

    def delete(self, version_dir: pathlib.Path) -> None:
        pass  # rows live inside the directory; rmtree handles them


class ParquetArrowBackend:
    """Parquet rows via pyarrow, with a graceful npz fallback.

    String columns are written as Arrow dictionary arrays (codes +
    categories, mirroring the engine's encoding) and the logical engine
    dtypes ride in the Parquet schema metadata, so a round-trip
    preserves types exactly. Without pyarrow installed, writes fall
    back to npz — recorded truthfully in the ``storage`` block — unless
    ``strict=True`` was requested.
    """

    name = "parquet"
    rows_file = "rows.parquet"
    _DTYPES_KEY = b"repro:dtypes"
    _NAME_KEY = b"repro:name"

    def __init__(self, strict: bool = False) -> None:
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError:
            pa = pq = None
        if strict and pa is None:
            raise RuntimeError(
                "ParquetArrowBackend(strict=True) requires pyarrow, "
                "which is not installed"
            )
        self._pa = pa
        self._pq = pq
        self._fallback = NpzBackend()

    @property
    def available(self) -> bool:
        """Whether pyarrow is importable (False = npz fallback mode)."""
        return self._pa is not None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        if self._pa is None:
            block = self._fallback.put_rows(version_dir, table)
            block["backend"] = self.name
            block["fallback"] = "pyarrow unavailable"
            return block  # fallback block already records the schema
        pa, pq = self._pa, self._pq
        arrays = []
        names = list(table.column_names)
        dtypes = {}
        for cname in names:
            col = table.column(cname)
            dtypes[cname] = col.dtype.value
            if col.dtype is DType.STRING:
                arrays.append(
                    pa.DictionaryArray.from_arrays(
                        pa.array(col.data, type=pa.int32()),
                        pa.array(list(col.categories), type=pa.string()),
                    )
                )
            elif col.dtype is DType.BOOL:
                arrays.append(pa.array(col.data, type=pa.bool_()))
            elif col.dtype is DType.FLOAT64:
                arrays.append(pa.array(col.data, type=pa.float64()))
            else:  # INT64 / TIMESTAMP: int64 storage
                arrays.append(pa.array(col.data, type=pa.int64()))
        metadata = {
            self._DTYPES_KEY: json.dumps(dtypes).encode("utf-8"),
            self._NAME_KEY: table.name.encode("utf-8"),
        }
        arrow_table = pa.Table.from_arrays(arrays, names=names)
        arrow_table = arrow_table.replace_schema_metadata(metadata)
        pq.write_table(arrow_table, version_dir / self.rows_file)
        return {
            "backend": self.name,
            "format": "parquet",
            "rows_file": self.rows_file,
            "columns": names,
        }

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get_rows(self, version_dir: pathlib.Path, storage: Dict) -> Table:
        if storage.get("format") == "npz":
            return self._fallback.get_rows(version_dir, storage)
        if self._pa is None:
            raise RuntimeError(
                "version was written as parquet but pyarrow is not "
                "installed; install pyarrow to read it"
            )
        pa, pq = self._pa, self._pq
        arrow_table = pq.read_table(
            version_dir / storage.get("rows_file", self.rows_file)
        )
        schema_meta = arrow_table.schema.metadata or {}
        dtypes = json.loads(
            schema_meta.get(self._DTYPES_KEY, b"{}").decode("utf-8")
        )
        name = schema_meta.get(self._NAME_KEY, b"").decode("utf-8")
        cols = {}
        for cname in arrow_table.column_names:
            arr = self._one_chunk(pa, arrow_table.column(cname))
            dtype = DType(dtypes[cname]) if cname in dtypes else None
            if pa.types.is_dictionary(arr.type):
                codes = np.asarray(
                    arr.indices.to_numpy(zero_copy_only=False),
                    dtype=np.int32,
                )
                cats = [str(c) for c in arr.dictionary.to_pylist()]
                cols[cname] = Column.from_codes(codes, cats)
                continue
            data = np.asarray(arr.to_numpy(zero_copy_only=False))
            if dtype is None:
                cols[cname] = Column.from_values(data)
            else:
                cols[cname] = Column(
                    dtype,
                    np.ascontiguousarray(data, dtype=dtype.storage_dtype),
                )
        return Table(cols, name=name)

    @staticmethod
    def _one_chunk(pa, chunked):
        """Collapse a (possibly multi-chunk) column to one Array."""
        if chunked.num_chunks == 1:
            return chunked.chunk(0)
        if chunked.num_chunks == 0:
            return pa.array([], type=chunked.type)
        combined = chunked.combine_chunks()
        if isinstance(combined, pa.ChunkedArray):
            combined = (
                combined.chunk(0)
                if combined.num_chunks == 1
                else pa.concat_arrays(list(combined.chunks))
            )
        return combined

    def list(self, version_dir: pathlib.Path) -> List[str]:
        return sorted(
            p.name
            for pattern in ("rows.parquet", "rows.npz")
            for p in version_dir.glob(pattern)
            if p.is_file()
        )

    def delete(self, version_dir: pathlib.Path) -> None:
        pass


class MemoryBackend:
    """Rows held in a process-wide dict; tests and benchmarks only.

    On disk a version carries just ``rows.mem`` — a small JSON marker
    so directory scans, byte accounting and completeness checks behave
    like the durable backends. The blob itself never leaves the
    process: a second *process* opening the store will find the marker
    but no rows and treat the version as unreadable (see the corrupt-
    version skip path in :meth:`SampleStore.get`).
    """

    name = "memory"
    rows_file = "rows.mem"

    #: version-dir path -> Table, shared by every store in the process
    _blobs: Dict[str, Table] = {}

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        key = os.path.abspath(str(version_dir))
        type(self)._blobs[key] = table
        (version_dir / self.rows_file).write_text(
            json.dumps({"rows": table.num_rows, "resident": "process"})
            + "\n"
        )
        return {
            "backend": self.name,
            "format": "memory",
            "rows_file": self.rows_file,
            "columns": list(table.column_names),
        }

    def get_rows(self, version_dir: pathlib.Path, storage: Dict) -> Table:
        key = os.path.abspath(str(version_dir))
        # Staged writes land under a hidden directory that is renamed
        # into place, so the blob may be registered under the staging
        # path; the store re-registers on rename (see SampleStore.put).
        try:
            return type(self)._blobs[key]
        except KeyError:
            raise OSError(
                f"memory backend has no resident rows for {version_dir} "
                "(written by another process, or the process restarted)"
            ) from None

    def rename(self, old_dir: pathlib.Path, new_dir: pathlib.Path) -> None:
        """Follow a staging-directory rename (store-internal hook)."""
        blobs = type(self)._blobs
        old_key = os.path.abspath(str(old_dir))
        if old_key in blobs:
            blobs[os.path.abspath(str(new_dir))] = blobs.pop(old_key)

    def list(self, version_dir: pathlib.Path) -> List[str]:
        return [
            p.name for p in version_dir.glob("rows.mem") if p.is_file()
        ]

    def delete(self, version_dir: pathlib.Path) -> None:
        type(self)._blobs.pop(os.path.abspath(str(version_dir)), None)


BACKENDS = {
    NpzBackend.name: NpzBackend,
    ParquetArrowBackend.name: ParquetArrowBackend,
    MemoryBackend.name: MemoryBackend,
}

#: format tag in a version's ``storage`` block -> backend able to read it
_FORMAT_READERS = {
    "npz": NpzBackend,
    "parquet": ParquetArrowBackend,
    "memory": MemoryBackend,
}


def available_backends() -> Dict[str, bool]:
    """Backend name -> fully functional on this host.

    ``parquet: False`` means pyarrow is missing: the backend still
    *writes* (npz fallback) but cannot read parquet-format versions."""
    return {
        NpzBackend.name: True,
        ParquetArrowBackend.name: ParquetArrowBackend().available,
        MemoryBackend.name: True,
    }


def resolve_backend(backend) -> StorageBackend:
    """Accept a backend name, instance, or None (-> default npz)."""
    if backend is None:
        return NpzBackend()
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            raise ValueError(
                f"unknown storage backend {backend!r}; "
                f"available: {', '.join(sorted(BACKENDS))}"
            ) from None
    if isinstance(backend, StorageBackend):
        return backend
    raise TypeError(
        f"backend must be a name or StorageBackend, got {type(backend)!r}"
    )


#: rows-file suffix -> storage format tag
_SUFFIX_FORMATS = {".npz": "npz", ".parquet": "parquet", ".mem": "memory"}


def infer_storage(version_dir) -> Optional[Dict]:
    """Reconstruct the ``storage`` block of a version directory whose
    meta predates storage blocks: ask each backend's :meth:`list`
    whether it recognizes a rows blob. npz is probed first — every
    pre-backend version was npz. Returns None when no backend claims a
    blob (the version is incomplete and must not be adopted)."""
    version_dir = pathlib.Path(version_dir)
    for name, cls in BACKENDS.items():
        blobs = cls().list(version_dir)
        if blobs:
            rows_file = blobs[0]
            fmt = _SUFFIX_FORMATS.get(
                pathlib.Path(rows_file).suffix, "npz"
            )
            return {"backend": fmt, "format": fmt, "rows_file": rows_file}
    return None


def backend_for_format(fmt: Optional[str]) -> StorageBackend:
    """Decode backend for a version's recorded format (legacy versions
    without a ``storage`` block decode as npz)."""
    if not fmt:
        return NpzBackend()
    try:
        return _FORMAT_READERS[fmt]()
    except KeyError:
        raise ValueError(
            f"version was written in unknown format {fmt!r}; "
            f"readable formats: {', '.join(sorted(_FORMAT_READERS))}"
        ) from None
