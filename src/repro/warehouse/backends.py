"""Pluggable physical storage for sample rows.

The :class:`~repro.warehouse.store.SampleStore` owns naming, versioning,
metadata, the manifest log and cross-process locks; a
:class:`StorageBackend` owns only the *rows blob* inside one version
directory. Every version's ``meta.json`` records which backend/format
wrote its rows (a ``storage`` block), so a store may hold versions in
mixed formats and any store instance can read all of them regardless of
its own default backend — decode dispatches on the stored format, not
on the configured backend.

Built-in backends (``docs/STORAGE.md`` has the full matrix):

``npz`` (:class:`NpzBackend`)
    The default: ``rows.npz`` via :meth:`Table.save`, dtypes and
    dictionary categories intact. No extra dependencies.
``parquet`` (:class:`ParquetArrowBackend`)
    ``rows.parquet`` via pyarrow — string columns as dictionary arrays,
    logical dtypes in the Arrow schema metadata. When pyarrow is not
    installed the backend degrades gracefully: writes land as npz
    (recorded as such in the ``storage`` block, so they stay readable
    everywhere) instead of failing, unless constructed with
    ``strict=True``.
``memory`` (:class:`MemoryBackend`)
    Rows live in a process-wide dict keyed by version path; only a tiny
    JSON marker file lands on disk. For tests and benchmarks — blobs do
    not survive the process.
``mmap`` (:class:`MmapBackend`)
    Zero-copy columnar: one raw uncompressed ``.npy`` file per column
    plus a small JSON sidecar (``rows.mmap``) holding the schema and
    dictionary categories. Columns come back *lazy* and map their file
    with ``np.load(mmap_mode="r")`` on first access, so ``get_rows`` is
    O(metadata), projected reads touch only the requested files, and
    concurrent processes on one host share the OS page cache instead of
    holding private copies. No extra dependencies.

Every ``get_rows`` accepts an optional ``columns=`` set naming the
columns the caller needs; omitted means a full read, so backends (and
third-party implementations) that predate the parameter stay correct —
the store only forwards it when a caller asked for a projection.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..engine.schema import DType
from ..engine.table import Column, Table

__all__ = [
    "StorageBackend",
    "NpzBackend",
    "ParquetArrowBackend",
    "MemoryBackend",
    "MmapBackend",
    "BACKENDS",
    "resolve_backend",
    "backend_for_format",
    "available_backends",
    "infer_storage",
]


@runtime_checkable
class StorageBackend(Protocol):
    """What the store needs from a physical rows format.

    A backend reads and writes one opaque blob per version directory;
    ``put_rows`` returns the ``storage`` block persisted in that
    version's ``meta.json`` (at minimum ``backend``, ``format`` and
    ``rows_file``; the built-ins also record the rows schema as
    ``columns`` so operators can inspect what a blob holds without
    decoding it), and ``get_rows`` must be able to decode any blob
    whose block names its format.

    ``get_rows`` takes an optional ``columns`` projection: the caller
    promises to touch only those columns, and the backend may skip
    loading the rest. ``None`` (the default) means a full read. The
    store calls the two-argument form when no projection was requested,
    so older backend implementations without the parameter keep
    working.
    """

    name: str

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        """Write ``table``'s rows into ``version_dir``; returns the
        ``storage`` block describing what was written."""
        ...

    def get_rows(
        self,
        version_dir: pathlib.Path,
        storage: Dict,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        """Load the rows blob described by ``storage``, restricted to
        ``columns`` when given (unknown names are silently ignored)."""
        ...

    def list(self, version_dir: pathlib.Path) -> List[str]:
        """Blob file names this backend recognizes in ``version_dir``."""
        ...

    def delete(self, version_dir: pathlib.Path) -> None:
        """Release backend-side resources for one version (called
        before the version directory itself is removed)."""
        ...


class NpzBackend:
    """Default backend: compressed npz via :meth:`Table.save`."""

    name = "npz"
    rows_file = "rows.npz"

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        table.save(version_dir / self.rows_file)
        return {
            "backend": self.name,
            "format": "npz",
            "rows_file": self.rows_file,
            "columns": list(table.column_names),
        }

    def get_rows(
        self,
        version_dir: pathlib.Path,
        storage: Dict,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        return Table.load(
            version_dir / storage.get("rows_file", self.rows_file),
            columns=columns,
        )

    def list(self, version_dir: pathlib.Path) -> List[str]:
        return [
            p.name for p in version_dir.glob("rows.npz") if p.is_file()
        ]

    def delete(self, version_dir: pathlib.Path) -> None:
        pass  # rows live inside the directory; rmtree handles them


class ParquetArrowBackend:
    """Parquet rows via pyarrow, with a graceful npz fallback.

    String columns are written as Arrow dictionary arrays (codes +
    categories, mirroring the engine's encoding) and the logical engine
    dtypes ride in the Parquet schema metadata, so a round-trip
    preserves types exactly. Without pyarrow installed, writes fall
    back to npz — recorded truthfully in the ``storage`` block — unless
    ``strict=True`` was requested.
    """

    name = "parquet"
    rows_file = "rows.parquet"
    _DTYPES_KEY = b"repro:dtypes"
    _NAME_KEY = b"repro:name"

    def __init__(self, strict: bool = False) -> None:
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError:
            pa = pq = None
        if strict and pa is None:
            raise RuntimeError(
                "ParquetArrowBackend(strict=True) requires pyarrow, "
                "which is not installed"
            )
        self._pa = pa
        self._pq = pq
        self._fallback = NpzBackend()

    @property
    def available(self) -> bool:
        """Whether pyarrow is importable (False = npz fallback mode)."""
        return self._pa is not None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        if self._pa is None:
            block = self._fallback.put_rows(version_dir, table)
            block["backend"] = self.name
            block["fallback"] = "pyarrow unavailable"
            return block  # fallback block already records the schema
        pa, pq = self._pa, self._pq
        arrays = []
        names = list(table.column_names)
        dtypes = {}
        for cname in names:
            col = table.column(cname)
            dtypes[cname] = col.dtype.value
            if col.dtype is DType.STRING:
                arrays.append(
                    pa.DictionaryArray.from_arrays(
                        pa.array(col.data, type=pa.int32()),
                        pa.array(list(col.categories), type=pa.string()),
                    )
                )
            elif col.dtype is DType.BOOL:
                arrays.append(pa.array(col.data, type=pa.bool_()))
            elif col.dtype is DType.FLOAT64:
                arrays.append(pa.array(col.data, type=pa.float64()))
            else:  # INT64 / TIMESTAMP: int64 storage
                arrays.append(pa.array(col.data, type=pa.int64()))
        metadata = {
            self._DTYPES_KEY: json.dumps(dtypes).encode("utf-8"),
            self._NAME_KEY: table.name.encode("utf-8"),
        }
        arrow_table = pa.Table.from_arrays(arrays, names=names)
        arrow_table = arrow_table.replace_schema_metadata(metadata)
        pq.write_table(arrow_table, version_dir / self.rows_file)
        return {
            "backend": self.name,
            "format": "parquet",
            "rows_file": self.rows_file,
            "columns": names,
        }

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get_rows(
        self,
        version_dir: pathlib.Path,
        storage: Dict,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        if storage.get("format") == "npz":
            return self._fallback.get_rows(version_dir, storage, columns=columns)
        if self._pa is None:
            raise RuntimeError(
                "version was written as parquet but pyarrow is not "
                "installed; install pyarrow to read it"
            )
        pa, pq = self._pa, self._pq
        path = version_dir / storage.get("rows_file", self.rows_file)
        read_columns = None
        if columns is not None:
            wanted = set(columns)
            # Intersect with what the blob actually holds: pyarrow
            # raises on unknown names, while the protocol says to
            # ignore them. The storage block records the schema; fall
            # back to reading the footer when it predates that.
            stored = storage.get("columns")
            if stored is None:
                stored = pq.read_schema(path).names
            read_columns = [c for c in stored if c in wanted]
        arrow_table = pq.read_table(path, columns=read_columns)
        schema_meta = arrow_table.schema.metadata or {}
        dtypes = json.loads(
            schema_meta.get(self._DTYPES_KEY, b"{}").decode("utf-8")
        )
        name = schema_meta.get(self._NAME_KEY, b"").decode("utf-8")
        cols = {}
        for cname in arrow_table.column_names:
            arr = self._one_chunk(pa, arrow_table.column(cname))
            dtype = DType(dtypes[cname]) if cname in dtypes else None
            if pa.types.is_dictionary(arr.type):
                codes = np.asarray(
                    arr.indices.to_numpy(zero_copy_only=False),
                    dtype=np.int32,
                )
                cats = [str(c) for c in arr.dictionary.to_pylist()]
                cols[cname] = Column.from_codes(codes, cats)
                continue
            data = np.asarray(arr.to_numpy(zero_copy_only=False))
            if dtype is None:
                cols[cname] = Column.from_values(data)
            else:
                cols[cname] = Column(
                    dtype,
                    np.ascontiguousarray(data, dtype=dtype.storage_dtype),
                )
        return Table(cols, name=name)

    @staticmethod
    def _one_chunk(pa, chunked):
        """Collapse a (possibly multi-chunk) column to one Array."""
        if chunked.num_chunks == 1:
            return chunked.chunk(0)
        if chunked.num_chunks == 0:
            return pa.array([], type=chunked.type)
        combined = chunked.combine_chunks()
        if isinstance(combined, pa.ChunkedArray):
            combined = (
                combined.chunk(0)
                if combined.num_chunks == 1
                else pa.concat_arrays(list(combined.chunks))
            )
        return combined

    def list(self, version_dir: pathlib.Path) -> List[str]:
        return sorted(
            p.name
            for pattern in ("rows.parquet", "rows.npz")
            for p in version_dir.glob(pattern)
            if p.is_file()
        )

    def delete(self, version_dir: pathlib.Path) -> None:
        pass


class MemoryBackend:
    """Rows held in a process-wide dict; tests and benchmarks only.

    On disk a version carries just ``rows.mem`` — a small JSON marker
    so directory scans, byte accounting and completeness checks behave
    like the durable backends. The blob itself never leaves the
    process: a second *process* opening the store will find the marker
    but no rows and treat the version as unreadable (see the corrupt-
    version skip path in :meth:`SampleStore.get`).
    """

    name = "memory"
    rows_file = "rows.mem"

    #: version-dir path -> Table, shared by every store in the process
    _blobs: Dict[str, Table] = {}

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        key = os.path.abspath(str(version_dir))
        type(self)._blobs[key] = table
        (version_dir / self.rows_file).write_text(
            json.dumps({"rows": table.num_rows, "resident": "process"})
            + "\n"
        )
        return {
            "backend": self.name,
            "format": "memory",
            "rows_file": self.rows_file,
            "columns": list(table.column_names),
        }

    def get_rows(
        self,
        version_dir: pathlib.Path,
        storage: Dict,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        key = os.path.abspath(str(version_dir))
        # Staged writes land under a hidden directory that is renamed
        # into place, so the blob may be registered under the staging
        # path; the store re-registers on rename (see SampleStore.put).
        try:
            table = type(self)._blobs[key]
        except KeyError:
            raise OSError(
                f"memory backend has no resident rows for {version_dir} "
                "(written by another process, or the process restarted)"
            ) from None
        if columns is not None:
            wanted = set(columns)
            keep = [c for c in table.column_names if c in wanted]
            if len(keep) < len(table.column_names):
                table = table.select(keep)
        return table

    def rename(self, old_dir: pathlib.Path, new_dir: pathlib.Path) -> None:
        """Follow a staging-directory rename (store-internal hook)."""
        blobs = type(self)._blobs
        old_key = os.path.abspath(str(old_dir))
        if old_key in blobs:
            blobs[os.path.abspath(str(new_dir))] = blobs.pop(old_key)

    def list(self, version_dir: pathlib.Path) -> List[str]:
        return [
            p.name for p in version_dir.glob("rows.mem") if p.is_file()
        ]

    def delete(self, version_dir: pathlib.Path) -> None:
        type(self)._blobs.pop(os.path.abspath(str(version_dir)), None)


def _mmap_loader(path: pathlib.Path):
    """Loader closure for one lazy mmap column.

    ``np.load(mmap_mode="r")`` returns a read-only ``np.memmap`` view of
    the file: no bytes are copied into the process, pages fault in on
    access and live in the shared OS page cache, so N workers reading
    the same version on one host keep one physical copy.
    """

    def load() -> np.ndarray:
        return np.load(path, mmap_mode="r")

    return load


class MmapBackend:
    """Zero-copy columnar backend: one raw ``.npy`` file per column.

    On disk a version holds ``rows.mmap`` (a JSON sidecar with the table
    name, row count, and per-column name/dtype/file/categories) plus one
    uncompressed ``col-NNN.npy`` per column (index-named, so
    path-hostile column names never touch the filesystem). ``get_rows``
    parses only the sidecar and returns a table of *lazy* columns whose
    files are memory-mapped on first access — untouched columns never
    open their file, and a full ``store.get`` is O(metadata).

    Torn versions are detected eagerly: every column file named by the
    sidecar is stat'ed during ``get_rows`` (cheap, no reads), so a
    missing file raises :class:`FileNotFoundError` there — inside the
    store's corrupt-version skip — instead of mid-query on first lazy
    access.
    """

    name = "mmap"
    rows_file = "rows.mmap"

    def put_rows(self, version_dir: pathlib.Path, table: Table) -> Dict:
        column_files: Dict[str, str] = {}
        sidecar_columns = []
        for i, cname in enumerate(table.column_names):
            col = table.column(cname)
            fname = f"col-{i:03d}.npy"
            np.save(
                version_dir / fname,
                np.ascontiguousarray(col.data),
                allow_pickle=False,
            )
            column_files[cname] = fname
            sidecar_columns.append(
                {
                    "name": cname,
                    "dtype": col.dtype.value,
                    "file": fname,
                    "categories": (
                        list(col.categories)
                        if col.categories is not None
                        else None
                    ),
                }
            )
        sidecar = {
            "name": table.name,
            "rows": int(table.num_rows),
            "columns": sidecar_columns,
        }
        (version_dir / self.rows_file).write_text(
            json.dumps(sidecar) + "\n", encoding="utf-8"
        )
        return {
            "backend": self.name,
            "format": "mmap",
            "rows_file": self.rows_file,
            "columns": list(table.column_names),
            "column_files": column_files,
        }

    def get_rows(
        self,
        version_dir: pathlib.Path,
        storage: Dict,
        columns: Optional[Sequence[str]] = None,
    ) -> Table:
        sidecar_path = version_dir / storage.get("rows_file", self.rows_file)
        sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
        rows = int(sidecar["rows"])
        wanted = None if columns is None else set(columns)
        cols: Dict[str, Column] = {}
        for spec in sidecar["columns"]:
            path = version_dir / spec["file"]
            # Stat every file — including projected-away ones — so a
            # torn version surfaces here, not mid-query.
            if not path.is_file():
                raise FileNotFoundError(
                    f"mmap version is missing column file {spec['file']!r} "
                    f"for column {spec['name']!r} in {version_dir}"
                )
            cname = spec["name"]
            if wanted is not None and cname not in wanted:
                continue
            cols[cname] = Column.lazy(
                DType(spec["dtype"]),
                _mmap_loader(path),
                rows,
                categories=spec.get("categories"),
            )
        return Table(cols, name=sidecar.get("name", ""))

    def list(self, version_dir: pathlib.Path) -> List[str]:
        sidecar = version_dir / self.rows_file
        if not sidecar.is_file():
            return []
        return [self.rows_file] + sorted(
            p.name for p in version_dir.glob("col-*.npy") if p.is_file()
        )

    def delete(self, version_dir: pathlib.Path) -> None:
        pass  # column files live inside the directory; rmtree handles them


BACKENDS = {
    NpzBackend.name: NpzBackend,
    ParquetArrowBackend.name: ParquetArrowBackend,
    MemoryBackend.name: MemoryBackend,
    MmapBackend.name: MmapBackend,
}

#: format tag in a version's ``storage`` block -> backend able to read it
_FORMAT_READERS = {
    "npz": NpzBackend,
    "parquet": ParquetArrowBackend,
    "memory": MemoryBackend,
    "mmap": MmapBackend,
}


def available_backends() -> Dict[str, bool]:
    """Backend name -> fully functional on this host.

    ``parquet: False`` means pyarrow is missing: the backend still
    *writes* (npz fallback) but cannot read parquet-format versions."""
    return {
        NpzBackend.name: True,
        ParquetArrowBackend.name: ParquetArrowBackend().available,
        MemoryBackend.name: True,
        MmapBackend.name: True,
    }


def resolve_backend(backend) -> StorageBackend:
    """Accept a backend name, instance, or None (-> default npz)."""
    if backend is None:
        return NpzBackend()
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            raise ValueError(
                f"unknown storage backend {backend!r}; "
                f"available: {', '.join(sorted(BACKENDS))}"
            ) from None
    if isinstance(backend, StorageBackend):
        return backend
    raise TypeError(
        f"backend must be a name or StorageBackend, got {type(backend)!r}"
    )


#: rows-file suffix -> storage format tag
_SUFFIX_FORMATS = {
    ".npz": "npz",
    ".parquet": "parquet",
    ".mem": "memory",
    ".mmap": "mmap",
}


def infer_storage(version_dir) -> Optional[Dict]:
    """Reconstruct the ``storage`` block of a version directory whose
    meta predates storage blocks: ask each backend's :meth:`list`
    whether it recognizes a rows blob. npz is probed first — every
    pre-backend version was npz. Returns None when no backend claims a
    blob (the version is incomplete and must not be adopted)."""
    version_dir = pathlib.Path(version_dir)
    for name, cls in BACKENDS.items():
        blobs = cls().list(version_dir)
        if blobs:
            rows_file = blobs[0]
            fmt = _SUFFIX_FORMATS.get(
                pathlib.Path(rows_file).suffix, "npz"
            )
            block = {"backend": fmt, "format": fmt, "rows_file": rows_file}
            if fmt == "mmap":
                # Rebuild the column-file list from the sidecar and
                # refuse to adopt a torn directory (missing col files).
                try:
                    sidecar = json.loads(
                        (version_dir / rows_file).read_text(encoding="utf-8")
                    )
                    specs = sidecar["columns"]
                except (OSError, ValueError, KeyError, TypeError):
                    return None
                column_files = {}
                for spec in specs:
                    if not (version_dir / spec["file"]).is_file():
                        return None
                    column_files[spec["name"]] = spec["file"]
                block["columns"] = list(column_files)
                block["column_files"] = column_files
            return block
    return None


def backend_for_format(fmt: Optional[str]) -> StorageBackend:
    """Decode backend for a version's recorded format (legacy versions
    without a ``storage`` block decode as npz)."""
    if not fmt:
        return NpzBackend()
    try:
        return _FORMAT_READERS[fmt]()
    except KeyError:
        raise ValueError(
            f"version was written in unknown format {fmt!r}; "
            f"readable formats: {', '.join(sorted(_FORMAT_READERS))}"
        ) from None
