"""Stratum-hash sharding of stratified samples.

A CVOPT sample is a union of disjoint per-stratum SRS draws, and every
per-group estimator the engine computes is a sum of per-row terms —
``(count, total, total_sq)`` moments are additive over any partition of
the rows ("A Sampling Algebra for Aggregate Estimation", arXiv
1307.0193). Partitioning the sample *by stratum* therefore loses
nothing: each shard holds complete strata with their exact
Horvitz-Thompson weights and per-stratum moments, and the union of the
shards is bit-for-bit the unsharded sample. That is the property the
scatter-gather front relies on: per-group partials from each shard
merge losslessly, and the contract CV math runs unchanged on the
merged moments.

This module provides the three pieces every sharded component shares:

* :func:`shard_of_key` — the deterministic ``stratum key -> shard``
  partitioner. It hashes the store's canonical tagged-JSON key encoding
  with BLAKE2 (never Python's ``hash``, which is salted per process),
  so front, workers, CLI and any future node agree on placement
  without coordination.
* :func:`split_sample` / :func:`merge_shard_allocations` — exact
  partition of a built :class:`~repro.core.sample.StratifiedSample`
  into per-shard samples, and the inverse merge of shard allocations
  (keys, populations, sizes, per-column moments) used by the front for
  routing and contracts.
* :class:`ShardedSampleStore` — one
  :class:`~repro.warehouse.store.SampleStore` per ``shard-NN/``
  sub-directory (each with its own manifest/lock protocol, unchanged),
  plus a root-level ``shards.json`` recording ``{count, scheme}`` so
  every process opens the store with the same topology.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.sample import (
    STRATUM_COLUMN,
    Allocation,
    StratifiedSample,
)
from ..engine.groupby import compute_group_keys
from ..engine.schema import DType
from ..engine.statistics import ColumnStats, StrataStatistics
from ..engine.table import Column, Table
from .store import SampleStore, _encode_key

__all__ = [
    "SHARD_META_FILE",
    "SHARD_SCHEME",
    "ShardedSampleStore",
    "merge_shard_allocations",
    "partition_table",
    "shard_of_key",
    "split_sample",
]

#: Name of the partitioning scheme recorded in ``shards.json``; bump it
#: if the hash or encoding ever changes so mixed topologies are caught.
SHARD_SCHEME = "stratum-hash-v1"

#: Root-level topology record of a sharded store.
SHARD_META_FILE = "shards.json"


def shard_of_key(key: Sequence, num_shards: int) -> int:
    """Deterministic shard index for one stratum key tuple.

    Hashes the store's canonical tagged-JSON encoding of the key with
    BLAKE2b — stable across processes, interpreter restarts and
    platforms (``PYTHONHASHSEED`` never enters the picture), so every
    component maps a stratum to the same shard forever.
    """
    if num_shards <= 1:
        return 0
    payload = json.dumps(
        _encode_key(tuple(key)), separators=(",", ":")
    ).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def shards_of_keys(keys: Sequence, num_shards: int) -> np.ndarray:
    """Vector of shard indices, one per stratum key."""
    return np.asarray(
        [shard_of_key(k, num_shards) for k in keys], dtype=np.int64
    )


def _slice_stats(
    stats: Optional[StrataStatistics], idx: np.ndarray, by, keys
) -> Optional[StrataStatistics]:
    if stats is None:
        return None
    return StrataStatistics(
        by=tuple(by),
        keys=[keys[i] for i in idx],
        sizes=np.asarray(stats.sizes)[idx],
        columns={
            name: ColumnStats(
                count=np.asarray(cs.count)[idx],
                total=np.asarray(cs.total)[idx],
                total_sq=np.asarray(cs.total_sq)[idx],
            )
            for name, cs in stats.columns.items()
        },
    )


def split_sample(
    sample: StratifiedSample, num_shards: int
) -> List[StratifiedSample]:
    """Partition a sample into ``num_shards`` per-shard samples.

    Strata are assigned whole (by :func:`shard_of_key`), so each shard
    keeps exact populations, sizes, HT weights and per-column moments
    for its strata; stratum ids are re-densified per shard. The union
    of the returned samples is exactly ``sample``. A shard that owns no
    strata gets a valid empty sample (same schema) so the topology
    stays uniform.
    """
    if num_shards <= 1:
        return [sample]
    alloc = sample.allocation
    assignment = shards_of_keys(alloc.keys, num_shards)
    gids = (
        sample.table.column(STRATUM_COLUMN).data.astype(np.int64)
        if STRATUM_COLUMN in sample.table
        else np.zeros(sample.table.num_rows, dtype=np.int64)
    )
    pieces = []
    for shard in range(num_shards):
        strata = np.flatnonzero(assignment == shard)
        remap = np.full(max(alloc.num_strata, 1), -1, dtype=np.int64)
        remap[strata] = np.arange(len(strata))
        mask = (
            remap[gids] >= 0
            if alloc.num_strata
            else np.zeros(len(gids), dtype=bool)
        )
        rows = sample.table.filter(mask)
        if STRATUM_COLUMN in rows:
            rows = rows.with_column(
                STRATUM_COLUMN,
                Column(DType.INT64, remap[gids[mask]]),
            )
        sub_alloc = Allocation(
            by=alloc.by,
            keys=[alloc.keys[i] for i in strata],
            populations=alloc.populations[strata],
            sizes=alloc.sizes[strata],
            scores=(
                alloc.scores[strata] if alloc.scores is not None else None
            ),
            stats=_slice_stats(alloc.stats, strata, alloc.by, alloc.keys),
        )
        pieces.append(
            StratifiedSample(
                table=rows,
                allocation=sub_alloc,
                method=sample.method,
                source_rows=int(sub_alloc.populations.sum()),
                # A shard's budget is its current allocation: refresh
                # re-balances within the shard against that bound;
                # cross-shard re-allocation happens only on a central
                # rebuild.
                budget=max(1, int(sub_alloc.sizes.sum())),
            )
        )
    return pieces


def merge_shard_allocations(
    allocations: Sequence[Allocation],
) -> Allocation:
    """Exact inverse of :func:`split_sample` at the metadata level.

    Concatenates the disjoint per-shard strata and re-sorts them by key
    so the merged view is independent of shard count; populations,
    sizes and per-column ``(count, total, total_sq)`` moments are taken
    verbatim (strata are never split across shards, so no arithmetic —
    and no floating-point error — is involved).
    """
    allocations = [a for a in allocations if a is not None]
    if not allocations:
        raise ValueError("no shard allocations to merge")
    by = allocations[0].by
    keys: list = []
    populations: list = []
    sizes: list = []
    scores: list = []
    have_scores = all(a.scores is not None for a in allocations)
    columns: Dict[str, Dict[str, list]] = {}
    have_stats = all(a.stats is not None for a in allocations)
    for alloc in allocations:
        if tuple(alloc.by) != tuple(by):
            raise ValueError(
                "shard allocations stratify differently: "
                f"{tuple(alloc.by)} vs {tuple(by)}"
            )
        keys.extend(tuple(k) for k in alloc.keys)
        populations.extend(int(x) for x in alloc.populations)
        sizes.extend(int(x) for x in alloc.sizes)
        if have_scores:
            scores.extend(float(x) for x in alloc.scores)
        if have_stats:
            for name, cs in alloc.stats.columns.items():
                block = columns.setdefault(
                    name, {"count": [], "total": [], "total_sq": []}
                )
                block["count"].extend(float(x) for x in cs.count)
                block["total"].extend(float(x) for x in cs.total)
                block["total_sq"].extend(float(x) for x in cs.total_sq)
    try:
        order = sorted(range(len(keys)), key=lambda i: _sort_key(keys[i]))
    except TypeError:  # unorderable mixed-type keys: keep shard order
        order = list(range(len(keys)))
    keys = [keys[i] for i in order]
    stats = None
    if have_stats:
        stats = StrataStatistics(
            by=tuple(by),
            keys=keys,
            sizes=np.asarray([sizes[i] for i in order], dtype=np.int64),
            columns={
                name: ColumnStats(
                    count=np.asarray(block["count"])[order],
                    total=np.asarray(block["total"])[order],
                    total_sq=np.asarray(block["total_sq"])[order],
                )
                for name, block in columns.items()
            },
        )
    return Allocation(
        by=tuple(by),
        keys=keys,
        populations=np.asarray(populations, dtype=np.int64)[order],
        sizes=np.asarray(sizes, dtype=np.int64)[order],
        scores=(
            np.asarray(scores, dtype=np.float64)[order]
            if have_scores
            else None
        ),
        stats=stats,
    )


def _sort_key(key: tuple) -> tuple:
    # None sorts first within its column; otherwise natural ordering.
    return tuple((v is not None, v) for v in key)


def partition_table(
    table: Table, by: Sequence[str], num_shards: int
) -> List[Table]:
    """Split rows by the stratum hash of their ``by``-key.

    This is how refresh batches are routed: each row goes to the shard
    that owns its stratum, so per-shard incremental maintenance sees
    exactly the rows the unsharded maintainer would have folded into
    those strata.
    """
    if num_shards <= 1:
        return [table]
    keys = compute_group_keys(table, by)
    if keys.num_groups == 0:
        return [table.filter(np.zeros(table.num_rows, dtype=bool))] * (
            num_shards
        )
    group_shard = shards_of_keys(keys.key_tuples(table), num_shards)
    row_shard = group_shard[keys.gids]
    return [table.filter(row_shard == s) for s in range(num_shards)]


class ShardedSampleStore:
    """N per-shard :class:`SampleStore` sub-stores under one root.

    Layout::

        root/
          shards.json          {"format": 1, "shards": {"count": N,
                                "scheme": "stratum-hash-v1"}}
          shard-00/            a full SampleStore (manifest, locks, ...)
          shard-01/
          ...

    Each sub-store keeps the complete PR-4 write protocol (fsync'd
    manifest commits, advisory file locks, pluggable backends), so
    shard workers in different processes coordinate exactly like
    independent stores — because they are.

    Opening an existing root reads the recorded topology; passing a
    conflicting ``shards`` count raises rather than silently re-hashing
    strata into the wrong sub-stores.
    """

    def __init__(
        self,
        root,
        shards: Optional[int] = None,
        backend=None,
        **store_kwargs,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / SHARD_META_FILE
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            recorded = int(meta["shards"]["count"])
            scheme = meta["shards"].get("scheme", SHARD_SCHEME)
            if scheme != SHARD_SCHEME:
                raise ValueError(
                    f"store {self.root} uses partition scheme {scheme!r}; "
                    f"this build understands {SHARD_SCHEME!r}"
                )
            if shards is not None and int(shards) != recorded:
                raise ValueError(
                    f"store {self.root} is sharded {recorded} ways; "
                    f"requested {shards}"
                )
            count = recorded
        else:
            if shards is None:
                raise ValueError(
                    f"{meta_path} not found and no shard count given"
                )
            count = int(shards)
            if count < 1:
                raise ValueError("shard count must be >= 1")
            tmp = meta_path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(
                    {
                        "format": 1,
                        "shards": {"count": count, "scheme": SHARD_SCHEME},
                    },
                    indent=2,
                )
            )
            tmp.replace(meta_path)
        self.num_shards = count
        self.stores = [
            SampleStore(
                self.shard_root(i), backend=backend, **store_kwargs
            )
            for i in range(count)
        ]

    @staticmethod
    def is_sharded_root(root) -> bool:
        """Whether ``root`` holds a sharded store topology record."""
        return (Path(root) / SHARD_META_FILE).exists()

    @staticmethod
    def shard_count(root) -> Optional[int]:
        """Recorded shard count of ``root`` (None if unsharded)."""
        meta_path = Path(root) / SHARD_META_FILE
        if not meta_path.exists():
            return None
        return int(json.loads(meta_path.read_text())["shards"]["count"])

    def shard_root(self, index: int) -> Path:
        return self.root / f"shard-{index:02d}"

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(
        self,
        name: str,
        sample: StratifiedSample,
        table_name: Optional[str] = None,
        lineage: Optional[Dict] = None,
        extra: Optional[Dict] = None,
        window: Optional[Dict] = None,
    ) -> List[str]:
        """Split ``sample`` by stratum hash and commit one piece per
        shard; returns the new version id of each shard (aligned with
        shard index). A ``window`` block tags every piece: a window's
        strata shard exactly like an all-of-history sample's (the two
        partitions are orthogonal)."""
        pieces = split_sample(sample, self.num_shards)
        versions = []
        for index, (store, piece) in enumerate(zip(self.stores, pieces)):
            tagged = dict(extra or {})
            tagged["shard"] = {
                "index": index,
                "count": self.num_shards,
                "scheme": SHARD_SCHEME,
            }
            piece_lineage = dict(lineage) if lineage else lineage
            if piece_lineage and "base_rows" in piece_lineage:
                # Each shard covers only its strata's populations; its
                # lineage must say so, or per-shard staleness ratios
                # (ingested / base) — and their sum at the front —
                # would be divided by the whole table N times over.
                piece_lineage["base_rows"] = piece.source_rows
            versions.append(
                store.put(
                    name,
                    piece,
                    table_name=table_name,
                    lineage=piece_lineage,
                    extra=tagged,
                    window=window,
                )
            )
        return versions

    def delete(self, name: str) -> None:
        for store in self.stores:
            store.delete(name)

    def prune(self, name: str, keep: int) -> List[List[str]]:
        return [store.prune(name, keep) for store in self.stores]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for store in self.stores:
            for name in store.names():
                seen.setdefault(name, None)
        return list(seen)

    def get_shards(self, name: str) -> List:
        """The current :class:`~repro.warehouse.store.StoredSample` of
        ``name`` on every shard (aligned with shard index)."""
        return [store.get(name) for store in self.stores]

    def merged_allocation(self, name: str) -> Allocation:
        """Routing-grade merged view of ``name`` across all shards."""
        return merge_shard_allocations(
            [stored.sample.allocation for stored in self.get_shards(name)]
        )

    def stats(self) -> List[List]:
        """Per-shard store accounting (list of ``StoreEntryStats`` rows
        per shard, aligned with shard index)."""
        return [store.stats() for store in self.stores]
