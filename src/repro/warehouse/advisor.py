"""Workload-driven materialization advisor.

Given a query workload (from a log) and a storage budget, decide which
stratifications to materialize. The paper's economics (Section 6) make
this a covering problem: a sample stratified on attribute set ``C``
answers every group-by over a subset of ``C``, so one fine sample can
serve a whole family of queries — but the finer the stratification, the
more rows it needs to hit a target CV.

The advisor:

1. preprocesses the workload into *aggregation groups*
   (:func:`repro.workload.model.derive_aggregation_groups`) — the
   frequency mass each (aggregation column, group assignment) pair
   contributes is exactly the weight CVOPT optimizes for;
2. enumerates candidate stratifications: each query's grouping
   attribute set, plus the union of all of them (the finest
   stratification, which covers everything);
3. prices each candidate with the a-priori CV planner
   (:func:`repro.aqp.planning.required_budget`): the smallest sample
   whose optimal allocation meets ``target_cv`` on every group, maxed
   over the candidate's aggregation columns;
4. greedily picks candidates by *marginal* covered frequency per stored
   row until the storage budget is exhausted (classic budgeted
   set-cover; re-scored each round so a fine pick subsumes the coarser
   ones it covers).

The resulting :class:`AdvisorPlan` can be materialized straight into a
:class:`~repro.warehouse.maintenance.SampleMaintainer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..aqp.planning import required_budget
from ..core.spec import apply_derived_columns, specs_from_sql
from ..engine.table import Table
from ..workload.model import Workload, derive_aggregation_groups
from .maintenance import SampleMaintainer

__all__ = ["Candidate", "Recommendation", "AdvisorPlan", "advise"]


@dataclass(frozen=True)
class Candidate:
    """One possible stratification to materialize."""

    attrs: Tuple[str, ...]  # stratification attributes (sorted)
    agg_columns: Tuple[str, ...]  # value columns it must answer
    budget: int  # rows needed to meet the target CV
    covered_frequency: int  # total frequency mass it can serve


@dataclass
class Recommendation:
    """A picked candidate with its marginal value at pick time."""

    candidate: Candidate
    marginal_frequency: int
    rank: int

    @property
    def name(self) -> str:
        return "wh_" + "_".join(self.candidate.attrs)


@dataclass
class AdvisorPlan:
    """Ranked materialization plan under a storage budget."""

    recommendations: List[Recommendation] = field(default_factory=list)
    storage_budget: int = 0
    rows_used: int = 0
    covered_frequency: int = 0
    total_frequency: int = 0
    uncovered_queries: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of workload frequency mass the plan can answer."""
        if self.total_frequency == 0:
            return 1.0
        return self.covered_frequency / self.total_frequency

    def summary(self) -> str:
        """Human-readable plan: budget use, ranked picks, gaps."""
        lines = [
            f"storage budget {self.storage_budget} rows, "
            f"{self.rows_used} used, "
            f"{self.coverage:.0%} of workload frequency covered"
        ]
        for rec in self.recommendations:
            cand = rec.candidate
            lines.append(
                f"  {rec.rank}. {rec.name}: stratify by "
                f"({', '.join(cand.attrs)}) x columns "
                f"({', '.join(cand.agg_columns)}) — {cand.budget} rows, "
                f"marginal frequency {rec.marginal_frequency}"
            )
        if self.uncovered_queries:
            lines.append(
                "  uncovered: " + ", ".join(self.uncovered_queries)
            )
        return "\n".join(lines)

    def materialize(
        self,
        maintainer: SampleMaintainer,
        table: Table,
        table_name: Optional[str] = None,
        seed: int = 0,
    ) -> List[str]:
        """Build every recommended sample into the maintainer's store."""
        built = []
        for rec in self.recommendations:
            cand = rec.candidate
            maintainer.build(
                rec.name,
                table,
                group_by=cand.attrs,
                value_columns=cand.agg_columns,
                budget=cand.budget,
                table_name=table_name,
                seed=seed,
            )
            built.append(rec.name)
        return built


def advise(
    workload: Workload,
    table: Table,
    storage_budget: int,
    target_cv: float = 0.05,
    max_candidates: int = 32,
) -> AdvisorPlan:
    """Recommend stratifications to materialize under ``storage_budget``
    total sample rows."""
    if storage_budget <= 0:
        raise ValueError("storage_budget must be positive")

    queries = _analyze_queries(workload)
    if not queries:
        return AdvisorPlan(storage_budget=storage_budget)

    # Frequency mass per aggregation group, attributed to the attribute
    # set the group's assignment spans.
    groups = derive_aggregation_groups(workload, table)
    mass_by_attrs: Dict[Tuple[str, ...], int] = {}
    for group in groups:
        attrs = tuple(sorted(attr for attr, _ in group.assignment))
        mass_by_attrs[attrs] = (
            mass_by_attrs.get(attrs, 0) + group.frequency
        )
    total_frequency = sum(mass_by_attrs.values())

    candidates = _build_candidates(
        queries, mass_by_attrs, table, target_cv, max_candidates
    )

    # Budgeted greedy set-cover on marginal frequency per stored row.
    plan = AdvisorPlan(
        storage_budget=storage_budget, total_frequency=total_frequency
    )
    covered: set = set()  # attr sets already answerable
    remaining = storage_budget
    rank = 0
    while True:
        best = None
        best_density = 0.0
        for cand in candidates:
            if cand.budget > remaining:
                continue
            marginal = sum(
                mass
                for attrs, mass in mass_by_attrs.items()
                if attrs not in covered and set(attrs) <= set(cand.attrs)
            )
            if marginal <= 0:
                continue
            density = marginal / max(cand.budget, 1)
            if best is None or density > best_density:
                best, best_density, best_marginal = cand, density, marginal
        if best is None:
            break
        rank += 1
        plan.recommendations.append(
            Recommendation(
                candidate=best, marginal_frequency=best_marginal, rank=rank
            )
        )
        plan.rows_used += best.budget
        plan.covered_frequency += best_marginal
        remaining -= best.budget
        covered.update(
            attrs
            for attrs in mass_by_attrs
            if set(attrs) <= set(best.attrs)
        )
        candidates = [c for c in candidates if c is not best]

    picked = [set(rec.candidate.attrs) for rec in plan.recommendations]
    for name, attr_sets, _ in queries:
        if not all(
            any(set(attrs) <= p for p in picked) for attrs in attr_sets
        ):
            plan.uncovered_queries.append(name)
    return plan


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _analyze_queries(workload: Workload):
    """Per query: (display name, grouping attr sets, agg columns)."""
    out = []
    for i, wq in enumerate(workload.queries):
        try:
            specs, _ = specs_from_sql(wq.sql)
        except ValueError:
            continue  # no group-by aggregation: nothing to materialize
        attr_sets = [tuple(sorted(spec.group_by)) for spec in specs]
        columns: list = []
        for spec in specs:
            columns.extend(spec.agg_columns)
        name = wq.name or f"q{i}"
        out.append((name, attr_sets, tuple(dict.fromkeys(columns))))
    return out


def _build_candidates(
    queries,
    mass_by_attrs: Dict[Tuple[str, ...], int],
    table: Table,
    target_cv: float,
    max_candidates: int,
) -> List[Candidate]:
    # Candidate attr sets: every grouping in the workload + their union.
    attr_sets: Dict[Tuple[str, ...], None] = {}
    union: Dict[str, None] = {}
    for _, sets_, _ in queries:
        for attrs in sets_:
            attr_sets.setdefault(attrs, None)
            for a in attrs:
                union.setdefault(a, None)
    finest = tuple(sorted(union))
    if finest:
        attr_sets.setdefault(finest, None)

    # Columns each candidate must answer: the union over covered
    # queries, restricted to real table columns — synthesized aggregate
    # arguments (COUNT(*)'s constant, COUNT_IF indicators) need no
    # dedicated statistics and cannot be handed to the maintainer.
    candidates: List[Candidate] = []
    for attrs in attr_sets:
        columns: list = []
        for _, sets_, cols in queries:
            if all(set(s) <= set(attrs) for s in sets_):
                columns.extend(c for c in cols if c in table)
        columns = tuple(dict.fromkeys(columns))
        if not columns:
            continue
        budget = _price_candidate(table, attrs, columns, target_cv)
        covered_frequency = sum(
            mass
            for a, mass in mass_by_attrs.items()
            if set(a) <= set(attrs)
        )
        candidates.append(
            Candidate(
                attrs=attrs,
                agg_columns=columns,
                budget=budget,
                covered_frequency=covered_frequency,
            )
        )
    candidates.sort(key=lambda c: (-c.covered_frequency, c.budget))
    return candidates[:max_candidates]


def _price_candidate(
    table: Table,
    attrs: Sequence[str],
    columns: Sequence[str],
    target_cv: float,
) -> int:
    """Rows needed so every group of every column meets ``target_cv``."""
    budget = 1
    for column in columns:
        if column not in table:
            # Derived columns (COUNT(*) indicators etc.) are synthesized
            # by the samplers; price them as constant — one row per
            # stratum suffices, which max() already covers.
            continue
        budget = max(
            budget,
            required_budget(
                table,
                group_by=tuple(attrs),
                column=column,
                target=target_cv,
                criterion="max_cv",
            ),
        )
    return int(budget)
