"""Time-windowed samples: tumbling partition and exact window merge.

A windowed sample family partitions ingest by a declared timestamp
column into half-open tumbling windows ``[start, start + width)``
(``start = (ts // width) * width``), and builds one independent CVOPT
sample per window. Each window is persisted as its own store member
(``base@w<start>``) tagged with a ``window`` block in meta.

Sliding-window queries are answered compositionally: the per-(stratum,
column) ``(count, total, total_sq)`` moments of the covered windows are
**summed** per stratum key — windows partition the base rows, so
additive moments merge exactly ("A Sampling Algebra for Aggregate
Estimation", arXiv 1307.0193). This is the same compositional move as
the sharded scatter-gather merge (:func:`~repro.warehouse.sharding.merge_shard_allocations`)
with one structural difference: shards own *disjoint* strata (merge =
concatenate), while windows *share* strata (merge = sum per key).

Optional exponential decay biases a merged sample toward recent data:
window ``w`` (counting back from the newest covered window) has its
moments and Horvitz-Thompson row weights scaled by ``decay ** w``.
Scaling ``(count, total, total_sq)`` uniformly leaves every per-window
mean and CV unchanged — only the windows' *relative* mass in the
mixture shifts — and raw integer populations/sizes are kept unscaled,
so the allocation invariants (``sizes <= populations``) hold verbatim.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.sample import (
    STRATUM_COLUMN,
    WEIGHT_COLUMN,
    Allocation,
    StratifiedSample,
)
from ..engine.schema import DType
from ..engine.statistics import ColumnStats, StrataStatistics
from ..engine.table import Column, Table
from .sharding import _sort_key

__all__ = [
    "SLIDE_SUFFIX",
    "WINDOWED_METHOD",
    "covering_window_starts",
    "format_window",
    "merge_window_allocations",
    "merge_window_samples",
    "parse_window",
    "parse_window_sample_name",
    "partition_by_window",
    "window_decay_factors",
    "window_sample_name",
    "window_start",
]

#: Method tag of a merged sliding-window sample.
WINDOWED_METHOD = "CVOPT-WINDOWED"

#: Registered name suffix of the materialized sliding merge of a family.
SLIDE_SUFFIX = "@slide"

_UNIT_SECONDS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}

_SPEC_RE = re.compile(r"^\s*(\d+)\s*([smhdw]?)\s*$")

_NAME_RE = re.compile(r"^(?P<base>.+)@w(?P<start>-?\d+)$")


def parse_window(spec) -> int:
    """Window width in seconds from a ``"90s" / "15m" / "1h" / "7d"``
    spec (bare integers are seconds)."""
    if isinstance(spec, (int, np.integer)):
        width = int(spec)
    else:
        match = _SPEC_RE.match(str(spec))
        if not match:
            raise ValueError(
                f"bad window spec {spec!r}; expected e.g. 90s, 15m, 1h, 7d"
            )
        width = int(match.group(1)) * _UNIT_SECONDS[match.group(2) or "s"]
    if width <= 0:
        raise ValueError("window width must be positive")
    return width


def format_window(width: int) -> str:
    """Shortest round-trippable spec for ``width`` seconds."""
    for unit in ("w", "d", "h", "m"):
        size = _UNIT_SECONDS[unit]
        if width % size == 0:
            return f"{width // size}{unit}"
    return f"{width}s"


def window_start(ts: int, width: int) -> int:
    """Start of the half-open tumbling window containing ``ts``.

    Floor division keeps negative timestamps in exactly one window too.
    """
    return int(ts // width) * width


def window_sample_name(base: str, start: int) -> str:
    """Store member name of one window of family ``base``."""
    return f"{base}@w{int(start)}"


def parse_window_sample_name(name: str) -> Optional[Tuple[str, int]]:
    """``(base, start)`` if ``name`` is a window member, else None."""
    match = _NAME_RE.match(name)
    if not match:
        return None
    return match.group("base"), int(match.group("start"))


def covering_window_starts(
    lo: int, hi: int, width: int
) -> List[int]:
    """Starts of the tumbling windows intersecting half-open ``[lo, hi)``."""
    if hi <= lo:
        return []
    first = window_start(lo, width)
    last = window_start(hi - 1, width)
    return list(range(first, last + width, width))


def partition_by_window(
    table: Table, column: str, width: int
) -> Dict[int, Table]:
    """Split ``table`` into per-window tables, keyed by window start.

    Each row lands in exactly one half-open window; the result is
    ordered by start.
    """
    ts = table.column(column).values_numeric().astype(np.int64)
    starts = (ts // width) * width
    out: Dict[int, Table] = {}
    for start in sorted({int(s) for s in starts}):
        out[int(start)] = table.filter(starts == start)
    return out


def window_decay_factors(
    starts: Sequence[int], width: int, decay: Optional[float]
) -> Dict[int, float]:
    """Per-window scale factor: newest window 1.0, each step back
    multiplied by ``decay``."""
    starts = [int(s) for s in starts]
    if decay is None or not starts:
        return {s: 1.0 for s in starts}
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must be in (0, 1]")
    newest = max(starts)
    return {
        s: float(decay) ** ((newest - s) // width) for s in starts
    }


def merge_window_allocations(
    allocations: Sequence[Allocation],
    factors: Optional[Sequence[float]] = None,
) -> Allocation:
    """Sum per-window allocations into the sliding-window view.

    Windows partition the base rows but *share* strata, so — unlike the
    disjoint-strata shard merge — populations, sizes and per-column
    moments are **summed** per stratum key. ``factors`` (aligned with
    ``allocations``) scales each window's statistics moments for decay;
    populations and sizes stay raw integer sums so the
    ``sizes <= populations`` invariant is untouched.
    """
    allocations = [a for a in allocations if a is not None]
    if not allocations:
        raise ValueError("no window allocations to merge")
    if factors is None:
        factors = [1.0] * len(allocations)
    if len(factors) != len(allocations):
        raise ValueError("factors must align with allocations")
    by = tuple(allocations[0].by)
    index: Dict[tuple, int] = {}
    keys: List[tuple] = []
    for alloc in allocations:
        if tuple(alloc.by) != by:
            raise ValueError(
                "window allocations stratify differently: "
                f"{tuple(alloc.by)} vs {by}"
            )
        for key in alloc.keys:
            key = tuple(key)
            if key not in index:
                index[key] = len(keys)
                keys.append(key)
    try:
        order = sorted(range(len(keys)), key=lambda i: _sort_key(keys[i]))
    except TypeError:  # unorderable mixed-type keys: first-seen order
        order = list(range(len(keys)))
    keys = [keys[i] for i in order]
    index = {key: i for i, key in enumerate(keys)}

    n = len(keys)
    populations = np.zeros(n, dtype=np.int64)
    sizes = np.zeros(n, dtype=np.int64)
    have_stats = all(a.stats is not None for a in allocations)
    columns: Dict[str, Dict[str, np.ndarray]] = {}
    if have_stats:
        names = set(allocations[0].stats.columns)
        for alloc in allocations[1:]:
            names &= set(alloc.stats.columns)
        columns = {
            name: {
                "count": np.zeros(n),
                "total": np.zeros(n),
                "total_sq": np.zeros(n),
            }
            for name in names
        }
    for alloc, factor in zip(allocations, factors):
        slots = np.asarray(
            [index[tuple(k)] for k in alloc.keys], dtype=np.int64
        )
        np.add.at(populations, slots, alloc.populations)
        np.add.at(sizes, slots, alloc.sizes)
        for name, block in columns.items():
            cs = alloc.stats.columns[name]
            np.add.at(block["count"], slots, factor * np.asarray(cs.count))
            np.add.at(block["total"], slots, factor * np.asarray(cs.total))
            np.add.at(
                block["total_sq"], slots, factor * np.asarray(cs.total_sq)
            )
    stats = None
    if have_stats:
        stats = StrataStatistics(
            by=by,
            keys=keys,
            sizes=sizes.copy(),
            columns={
                name: ColumnStats(
                    count=block["count"],
                    total=block["total"],
                    total_sq=block["total_sq"],
                )
                for name, block in columns.items()
            },
        )
    return Allocation(
        by=by,
        keys=keys,
        populations=populations,
        sizes=sizes,
        stats=stats,
    )


def merge_window_samples(
    samples: Sequence[StratifiedSample],
    factors: Optional[Sequence[float]] = None,
) -> StratifiedSample:
    """Materialize the sliding-window sample from per-window samples.

    Rows are concatenated with stratum ids remapped onto the merged key
    order and Horvitz-Thompson weights scaled by the window's decay
    factor; the merged allocation carries the exactly-summed (optionally
    decayed) moments. With ``factors`` all 1.0 the result is
    moment-exact versus a sample maintained on the union of the
    windows' rows.
    """
    samples = [s for s in samples if s is not None]
    if not samples:
        raise ValueError("no window samples to merge")
    if factors is None:
        factors = [1.0] * len(samples)
    merged_alloc = merge_window_allocations(
        [s.allocation for s in samples], factors
    )
    index = {tuple(k): i for i, k in enumerate(merged_alloc.keys)}
    table: Optional[Table] = None
    for sample, factor in zip(samples, factors):
        part = sample.table
        if part.num_rows == 0:
            continue
        local = sample.allocation
        remap = np.asarray(
            [index[tuple(k)] for k in local.keys], dtype=np.int64
        )
        gids = (
            part.column(STRATUM_COLUMN).data.astype(np.int64)
            if STRATUM_COLUMN in part
            else np.zeros(part.num_rows, dtype=np.int64)
        )
        part = part.with_column(
            STRATUM_COLUMN, Column(DType.INT64, remap[gids])
        )
        if WEIGHT_COLUMN in part and factor != 1.0:
            weights = part.column(WEIGHT_COLUMN).data.astype(np.float64)
            part = part.with_column(
                WEIGHT_COLUMN, Column(DType.FLOAT64, weights * factor)
            )
        table = part if table is None else table.concat(part)
    if table is None:
        table = Table({})
    return StratifiedSample(
        table=table,
        allocation=merged_alloc,
        method=WINDOWED_METHOD,
        source_rows=sum(int(s.source_rows) for s in samples),
        budget=sum(int(s.budget) for s in samples),
    )
