"""Incremental sample maintenance (paper Section 8 made durable).

Samples in the warehouse go stale as the base table grows. The
maintenance pipeline folds appended batches into a stored sample in one
pass over *only the new rows*, using the streaming CVOPT
(:class:`~repro.core.streaming.StreamingCVOptSampler`) warm-started
from the persisted sample + its pass-1 statistics:

* within each stratum the stored rows seed a reservoir whose ``seen``
  counter is the stratum population, so continuing Algorithm R over the
  batch yields an exact SRS of the extended population;
* per-stratum moments are merged exactly **per tracked column**
  (moments are additive), so the Horvitz-Thompson weights, the
  CV-driven re-balance and every column's accuracy contract use true
  populations, not estimates — a refresh never silently invalidates
  the statistics of the other aggregates the sample was built for;
* re-balancing is **shrink-only** (growing a reservoir would bias
  toward late rows), so a stratum whose optimal share *grows* over time
  cannot be topped up incrementally. That is the drift the
  **escalation rule** watches: drift is measured per tracked column
  against the allocation a fresh multi-column rebuild would choose,
  and when *any* column's predicted-CV objective degrades past
  ``cv_degradation_threshold`` times that optimum, the maintainer
  escalates to a full two-pass rebuild (when handed the full table) or
  flags ``needs_rebuild`` in the lineage.

Every refresh writes a *new immutable version* to the store and prunes
old ones, so concurrent readers keep serving the previous version until
the atomic pointer swap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.allocation import allocate_for_columns
from ..core.cvopt import CVOptSampler
from ..core.sample import STRATUM_COLUMN, WEIGHT_COLUMN, StratifiedSample
from ..core.spec import GroupByQuerySpec
from ..core.streaming import StreamingCVOptSampler
from ..engine.statistics import (
    ColumnStats,
    StrataStatistics,
    collect_strata_statistics,
)
from ..engine.table import Table
from .store import SampleStore, StoredSample, derive_columns_block
from .windows import parse_window, partition_by_window, window_sample_name

__all__ = [
    "SampleMaintainer",
    "BuildReport",
    "RefreshReport",
    "StalenessInfo",
    "WindowedBuildReport",
    "allocation_drift",
    "allocation_drift_by_column",
    "staleness_from_lineage",
    "tracked_columns_from_lineage",
]

#: Stand-in CV for groups an allocation cannot estimate (no rows) when
#: comparing objectives — finite so ratios stay comparable.
_CV_CAP = 10.0


@dataclass
class BuildReport:
    """Outcome of a full two-pass build."""

    name: str
    version: str
    rows: int
    strata: int
    budget: int
    source_rows: int
    columns: List[str] = field(default_factory=list)


@dataclass
class WindowedBuildReport:
    """Outcome of a windowed build: one store member per window."""

    name: str  # family base name
    column: str  # timestamp column the ingest was partitioned on
    width: int  # window width, seconds
    starts: List[int] = field(default_factory=list)
    windows: List[BuildReport] = field(default_factory=list)

    @property
    def rows(self) -> int:
        return sum(w.rows for w in self.windows)


@dataclass
class RefreshReport:
    """Outcome of one maintenance round."""

    name: str
    version: str
    action: str  # "incremental" or "rebuild"
    rows_ingested: int
    source_rows: int  # population covered after the refresh
    sample_rows: int
    new_strata: int
    staleness: float  # rows ingested since last full build / base rows
    drift: float  # worst per-column achieved/optimal objective (>= 1)
    needs_rebuild: bool
    columns: List[str] = field(default_factory=list)
    drift_by_column: Dict[str, float] = field(default_factory=dict)


@dataclass
class StalenessInfo:
    """Lineage summary of a stored sample's maintenance state."""

    name: str
    version: str
    refresh_count: int
    rows_ingested: int
    base_rows: int
    staleness: float
    drift: float
    needs_rebuild: bool
    columns: List[str] = field(default_factory=list)
    drift_by_column: Dict[str, float] = field(default_factory=dict)
    #: Newest covered event timestamp (windowed samples; None otherwise).
    max_event_ts: Optional[int] = None


class SampleMaintainer:
    """Builds samples into a store and keeps them fresh.

    Parameters
    ----------
    store:
        The :class:`~repro.warehouse.store.SampleStore` to read/write.
    cv_degradation_threshold:
        Escalate to a full rebuild when any tracked column's
        predicted-CV objective exceeds this multiple of the optimal
        objective at the same budget (on current statistics).
    keep_versions:
        Versions retained per sample after each write (older ones are
        pruned; the current version is always kept).
    """

    def __init__(
        self,
        store: SampleStore,
        cv_degradation_threshold: float = 1.5,
        keep_versions: int = 4,
        headroom: float = 2.0,
    ) -> None:
        if cv_degradation_threshold < 1.0:
            raise ValueError("cv_degradation_threshold must be >= 1")
        self.store = store
        self.cv_degradation_threshold = float(cv_degradation_threshold)
        self.keep_versions = int(keep_versions)
        self.headroom = float(headroom)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build(
        self,
        name: str,
        table: Table,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        table_name: Optional[str] = None,
        seed: int = 0,
    ) -> BuildReport:
        """Two-pass CVOPT build, persisted as a new version.

        Every column in ``value_columns`` is *tracked*: its per-stratum
        moments are collected, persisted, and kept exact by subsequent
        refreshes. The first column is the primary (re-balance driver)
        for incremental maintenance.
        """
        value_columns = list(dict.fromkeys(value_columns))
        if not value_columns:
            raise ValueError("need at least one value column")
        spec = GroupByQuerySpec(
            group_by=tuple(group_by), aggregates=tuple(value_columns)
        )
        sampler = CVOptSampler([spec])
        sample = sampler.sample(table, budget, seed=seed)
        lineage = _fresh_lineage(value_columns, sample.source_rows)
        version = self.store.put(
            name, sample, table_name=table_name, lineage=lineage
        )
        self.store.prune(name, keep=self.keep_versions)
        return BuildReport(
            name=name,
            version=version,
            rows=sample.num_rows,
            strata=sample.allocation.num_strata,
            budget=sample.budget,
            source_rows=sample.source_rows,
            columns=list(value_columns),
        )

    def build_windowed(
        self,
        name: str,
        table: Table,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        ts_column: str,
        window,
        table_name: Optional[str] = None,
        seed: int = 0,
    ) -> WindowedBuildReport:
        """Partition ``table`` into tumbling windows on ``ts_column``
        and run one two-pass build per window.

        Each window becomes an independent store member
        (``name@w<start>``) whose meta carries the format-4 ``window``
        block; ``budget`` is *per window* — a k-window sliding answer
        merges ~``k * budget`` rows. The per-window lineage records
        ``max_event_ts``, the newest covered event, which is what
        event-time staleness is measured from.
        """
        value_columns = list(dict.fromkeys(value_columns))
        if not value_columns:
            raise ValueError("need at least one value column")
        if ts_column not in table:
            raise KeyError(f"timestamp column {ts_column!r} not in table")
        width = parse_window(window)
        report = WindowedBuildReport(
            name=name, column=ts_column, width=width
        )
        spec = GroupByQuerySpec(
            group_by=tuple(group_by), aggregates=tuple(value_columns)
        )
        for start, part in partition_by_window(
            table, ts_column, width
        ).items():
            member = window_sample_name(name, start)
            sample = CVOptSampler([spec]).sample(part, budget, seed=seed)
            window_block = {
                "column": ts_column,
                "width": width,
                "start": int(start),
                "end": int(start) + width,
            }
            lineage = _fresh_lineage(value_columns, sample.source_rows)
            lineage["window"] = dict(window_block)
            lineage["max_event_ts"] = int(
                part.column(ts_column).values_numeric().max()
            )
            version = self.store.put(
                member,
                sample,
                table_name=table_name,
                lineage=lineage,
                window=window_block,
            )
            self.store.prune(member, keep=self.keep_versions)
            report.starts.append(int(start))
            report.windows.append(
                BuildReport(
                    name=member,
                    version=version,
                    rows=sample.num_rows,
                    strata=sample.allocation.num_strata,
                    budget=sample.budget,
                    source_rows=sample.source_rows,
                    columns=list(value_columns),
                )
            )
        return report

    # ------------------------------------------------------------------
    # refreshing
    # ------------------------------------------------------------------
    def refresh(
        self,
        name: str,
        batch: Table,
        full_table: Optional[Table] = None,
        seed: int = 0,
        columns: Optional[Sequence[str]] = None,
    ) -> RefreshReport:
        """Fold an appended ``batch`` into the stored sample.

        ``full_table`` (base table + all batches so far) enables the
        escalation path: when drift crosses the threshold and the full
        table is available, a two-pass rebuild replaces the incremental
        result; without it the refresh still lands but the new version's
        lineage carries ``needs_rebuild: True``.

        ``columns`` overrides the tracked column set for this and
        subsequent refreshes (default: the columns recorded in the
        sample's lineage at build time). Every tracked column's
        per-stratum moments are merged exactly from the batch.
        """
        stored = self.store.get(name)
        lineage = dict(stored.lineage)
        window_block = getattr(stored, "window", None) or lineage.get(
            "window"
        )
        prev_event_ts = lineage.get("max_event_ts")
        value_columns = self._value_columns(stored, batch, columns)
        primary = value_columns[0]
        batch = _align_batch(stored.sample, batch)

        sampler = StreamingCVOptSampler.resume(
            stored.sample,
            value_columns,
            headroom=self.headroom,
            seed=seed,
        )
        old_strata = stored.sample.allocation.num_strata
        sampler.observe_table(batch)
        sample = sampler.finalize()
        # The streaming pass tracks every lineage column; fold the
        # batch's moments into any *other* column the build kept (e.g.
        # a legacy meta whose lineage predates multi-column tracking),
        # so the persisted statistics stay exact across refreshes.
        _merge_statistics(stored.sample.allocation.stats, batch, sample)

        drift_by_column = allocation_drift_by_column(sample, value_columns)
        drift = max(drift_by_column.values())
        rows_ingested = (
            int(lineage.get("rows_ingested", 0)) + batch.num_rows
        )
        base_rows = int(lineage.get("base_rows", 0)) or stored.sample.source_rows
        staleness = rows_ingested / base_rows if base_rows else float("inf")
        needs_rebuild = bool(drift > self.cv_degradation_threshold)

        action = "incremental"
        if needs_rebuild and full_table is not None:
            # Rebuild for every column the original build tracked, not
            # just the maintenance columns.
            stored_stats = stored.sample.allocation.stats
            rebuild_columns = list(
                dict.fromkeys(
                    list(value_columns)
                    + list(stored_stats.columns if stored_stats else ())
                )
            )
            spec = GroupByQuerySpec(
                group_by=sample.allocation.by,
                aggregates=tuple(rebuild_columns),
            )
            sample = CVOptSampler([spec]).sample(
                full_table, stored.sample.budget, seed=seed
            )
            drift_by_column = allocation_drift_by_column(
                sample, value_columns
            )
            drift = max(drift_by_column.values())
            action = "rebuild"
            needs_rebuild = False
            lineage = _fresh_lineage(value_columns, sample.source_rows)
            lineage["action"] = "rebuild"
        else:
            lineage.update(
                action=action,
                refresh_count=int(lineage.get("refresh_count", 0)) + 1,
                rows_ingested=rows_ingested,
                base_rows=base_rows,
                parent_version=stored.version,
            )
        lineage.update(
            value_columns=list(value_columns),
            value_column=primary,  # legacy single-column readers
            primary_column=primary,
            staleness=0.0 if action == "rebuild" else staleness,
            drift=float(drift),
            drift_by_column={
                c: float(d) for c, d in drift_by_column.items()
            },
            needs_rebuild=needs_rebuild,
        )
        if window_block is not None:
            # Keep the window tag and the newest covered event across
            # refreshes (the rebuild path resets lineage wholesale, so
            # re-apply both): event-time staleness is measured from
            # ``max_event_ts``, not from wall-clock ingest.
            lineage["window"] = dict(window_block)
            event_ts = prev_event_ts
            column = window_block.get("column")
            if column and column in batch and batch.num_rows:
                batch_max = int(
                    batch.column(column).values_numeric().max()
                )
                event_ts = (
                    batch_max
                    if event_ts is None
                    else max(int(event_ts), batch_max)
                )
            if event_ts is not None:
                lineage["max_event_ts"] = int(event_ts)
        version = self.store.put(
            name,
            sample,
            table_name=stored.table_name,
            lineage=lineage,
            extra=stored.extra,
            window=window_block,
        )
        self.store.prune(name, keep=self.keep_versions)
        return RefreshReport(
            name=name,
            version=version,
            action=action,
            rows_ingested=batch.num_rows,
            source_rows=sample.source_rows,
            sample_rows=sample.num_rows,
            new_strata=sample.allocation.num_strata - old_strata,
            staleness=0.0 if action == "rebuild" else staleness,
            drift=float(drift),
            needs_rebuild=needs_rebuild,
            columns=list(value_columns),
            drift_by_column={
                c: float(d) for c, d in drift_by_column.items()
            },
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def staleness(self, name: str) -> StalenessInfo:
        """Maintenance state of the *current* stored version of ``name``.

        Reads the store (one ``meta.json``); raises :class:`KeyError`
        for unknown samples. For a lock-free in-memory view of the
        *served* version, use the warehouse service's lineage snapshot
        instead.
        """
        stored = self.store.get(name)
        lineage = stored.lineage
        base_rows = int(lineage.get("base_rows", 0)) or stored.sample.source_rows
        rows_ingested = int(lineage.get("rows_ingested", 0))
        return StalenessInfo(
            name=name,
            version=stored.version,
            refresh_count=int(lineage.get("refresh_count", 0)),
            rows_ingested=rows_ingested,
            base_rows=base_rows,
            staleness=staleness_from_lineage(
                lineage, stored.sample.source_rows
            ),
            drift=float(lineage.get("drift", 1.0)),
            needs_rebuild=bool(lineage.get("needs_rebuild", False)),
            columns=tracked_columns_from_lineage(
                lineage, stored.sample.allocation.stats
            ),
            drift_by_column={
                c: float(d)
                for c, d in (lineage.get("drift_by_column") or {}).items()
            },
            max_event_ts=(
                int(lineage["max_event_ts"])
                if lineage.get("max_event_ts") is not None
                else None
            ),
        )

    def _value_columns(
        self,
        stored: StoredSample,
        batch: Optional[Table] = None,
        override: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """The columns a refresh must keep exact, validated against the
        batch.

        Lineage is authoritative (``value_columns``, or the legacy
        single ``value_column``); stored statistics are the fallback
        for metas that predate lineage columns. A tracked column that
        is missing from the batch is a hard error — silently
        maintaining a different column would corrupt every contract
        predicted from its moments.
        """
        if override is not None:
            columns = list(dict.fromkeys(override))
            if not columns:
                raise ValueError("columns override must not be empty")
            not_in_sample = [
                c for c in columns if c not in stored.sample.table
            ]
            if not_in_sample:
                payload = [
                    n
                    for n in stored.sample.table.column_names
                    if n not in (WEIGHT_COLUMN, STRATUM_COLUMN)
                ]
                raise ValueError(
                    f"sample {stored.name!r} does not carry column(s) "
                    f"{', '.join(sorted(not_in_sample))}; its rows hold: "
                    f"{', '.join(payload) or '-'} — rebuild the sample to "
                    "track a new column"
                )
        else:
            columns = tracked_columns_from_lineage(
                stored.lineage, stored.sample.allocation.stats
            )
        if not columns:
            raise ValueError(
                f"sample {stored.name!r} carries no value column for "
                "maintenance; rebuild it through SampleMaintainer.build"
            )
        if batch is not None:
            missing = [c for c in columns if c not in batch]
            if missing:
                raise ValueError(
                    f"sample {stored.name!r} tracks value column(s) "
                    f"{', '.join(sorted(missing))} that the batch does not "
                    "carry; batch columns: "
                    f"{', '.join(batch.column_names) or '-'}"
                )
        return columns

    # Backward-compatible single-column accessor (primary column).
    def _value_column(self, stored: StoredSample) -> str:
        return self._value_columns(stored)[0]


def tracked_columns_from_lineage(
    lineage: Dict, stats: Optional[StrataStatistics] = None
) -> List[str]:
    """Tracked value columns recorded in a version's lineage.

    Order matters: the first column is the primary (re-balance driver).
    Legacy lineages carry a single ``value_column``; metas older still
    carry nothing, in which case the persisted statistics columns are
    the best available record. Delegates to the store's canonical
    derivation so the meta ``columns`` block and the maintainer can
    never disagree.
    """
    return list(derive_columns_block(lineage, stats)["tracked"])


def staleness_from_lineage(
    lineage: Dict,
    fallback_base_rows: int = 0,
    now: Optional[float] = None,
) -> float:
    """Staleness ratio recorded in a version's lineage dict.

    For an un-windowed sample, staleness is *rows ingested since the
    last full build* divided by the base-table size at that build. A
    freshly built (or never refreshed) sample is 0.0; legacy metadata
    without ``base_rows`` falls back to ``fallback_base_rows``, and a
    positive ingest against an unknown base yields ``inf`` (maximally
    stale — nothing can be promised about it).

    A *windowed* sample (lineage carries a ``window`` block and
    ``max_event_ts``) measures staleness in **event time** instead:
    how many window widths the newest covered event lags behind ``now``
    (wall clock by default; tests pass it explicitly). Wall-clock
    ingest says nothing about a window that froze long ago —
    ``max_staleness`` on a windowed contract must mean "the data is at
    most this many windows behind".
    """
    window = lineage.get("window")
    event_ts = lineage.get("max_event_ts")
    if window and event_ts is not None:
        width = int(window.get("width", 0)) or 1
        if now is None:
            now = time.time()
        return max(0.0, (float(now) - float(event_ts)) / width)
    rows_ingested = int(lineage.get("rows_ingested", 0))
    if not rows_ingested:
        return 0.0
    base_rows = int(lineage.get("base_rows", 0)) or int(fallback_base_rows)
    return rows_ingested / base_rows if base_rows else float("inf")


def allocation_drift(
    sample: StratifiedSample, value_column: str, cv_cap: float = _CV_CAP
) -> float:
    """How far a sample's allocation is from optimal for one column.

    Returns the ratio of the achieved predicted-CV l2 objective to the
    objective of the *optimal* allocation at the same budget, both
    computed from the sample's per-stratum statistics; 1.0 is perfect.
    """
    return allocation_drift_by_column(
        sample, [value_column], cv_cap=cv_cap
    )[value_column]


def allocation_drift_by_column(
    sample: StratifiedSample,
    columns: Sequence[str],
    cv_cap: float = _CV_CAP,
) -> Dict[str, float]:
    """Per-column drift of a sample's allocation.

    The reference allocation is the one a fresh multi-column rebuild
    would choose for the *same* budget and column set
    (:func:`~repro.core.allocation.allocate_for_columns`), so a freshly
    rebuilt sample measures ~1.0 on every column by construction. Each
    column's drift is then the ratio of its achieved predicted-CV l2
    objective to its objective under that reference — "how much would a
    rebuild help this column". Columns without persisted statistics
    report 1.0 (nothing to compare).
    """
    from ..aqp.planning import predict_group_cvs

    columns = list(dict.fromkeys(columns))
    allocation = sample.allocation
    stats = allocation.stats
    out = {c: 1.0 for c in columns}
    if stats is None:
        return out
    known = [c for c in columns if c in stats.columns]
    if not known:
        return out
    optimal_sizes = allocate_for_columns(
        stats, known, sample.budget
    )
    for column in known:
        data_cvs = np.nan_to_num(
            stats.stats_for(column).cv(mean_floor=1e-9)
        )
        achieved = predict_group_cvs(
            allocation.populations, data_cvs, allocation.sizes
        )
        optimal = predict_group_cvs(
            allocation.populations, data_cvs, optimal_sizes
        )
        achieved = np.where(np.isfinite(achieved), achieved, cv_cap)
        optimal = np.where(np.isfinite(optimal), optimal, cv_cap)
        a = float(np.sqrt((achieved**2).sum()))
        o = float(np.sqrt((optimal**2).sum()))
        if o == 0.0:
            out[column] = 1.0 if a == 0.0 else float("inf")
        else:
            out[column] = a / o
    return out


def _merge_statistics(
    stored: Optional[StrataStatistics],
    batch: Table,
    sample: StratifiedSample,
) -> None:
    """Extend the refreshed sample's statistics beyond the streamed
    columns.

    Moments are additive, so for every column the original build
    tracked but the streaming pass did not (legacy metas), per-stratum
    ``(count, total, total_sq)`` over the extended population is
    exactly ``stored + batch`` — one vectorized pass over the batch, no
    rescan of old data.
    """
    final = sample.allocation.stats
    if stored is None or final is None:
        return
    columns = [
        c
        for c in stored.columns
        if c not in final.columns and c in batch
    ]
    if not columns:
        return
    batch_stats = collect_strata_statistics(
        batch, sample.allocation.by, columns
    )
    stored_idx = {tuple(k): i for i, k in enumerate(stored.keys)}
    batch_idx = {tuple(k): i for i, k in enumerate(batch_stats.keys)}
    n = final.num_strata
    for column in columns:
        s_cs = stored.stats_for(column)
        b_cs = batch_stats.stats_for(column)
        count = np.zeros(n)
        total = np.zeros(n)
        total_sq = np.zeros(n)
        for i, key in enumerate(final.keys):
            k = tuple(key)
            si = stored_idx.get(k)
            if si is not None:
                count[i] += s_cs.count[si]
                total[i] += s_cs.total[si]
                total_sq[i] += s_cs.total_sq[si]
            bi = batch_idx.get(k)
            if bi is not None:
                count[i] += b_cs.count[bi]
                total[i] += b_cs.total[bi]
                total_sq[i] += b_cs.total_sq[bi]
        final.columns[column] = ColumnStats(
            count=count, total=total, total_sq=total_sq
        )


def _fresh_lineage(value_columns: Sequence[str], base_rows: int) -> Dict:
    columns = list(dict.fromkeys(value_columns))
    return {
        "action": "build",
        "refresh_count": 0,
        "rows_ingested": 0,
        "base_rows": int(base_rows),
        "value_columns": columns,
        "value_column": columns[0],  # legacy single-column readers
        "primary_column": columns[0],
        "staleness": 0.0,
        "drift": 1.0,
        "drift_by_column": {c: 1.0 for c in columns},
        "needs_rebuild": False,
    }


def _align_batch(sample: StratifiedSample, batch: Table) -> Table:
    """Project ``batch`` onto the sample's payload columns.

    Missing columns are an error; extra ones are dropped — reservoir
    rows from different eras must share one column set, or finalizing
    the mixed rows would fail.
    """
    needed = [
        n
        for n in sample.table.column_names
        if n not in (WEIGHT_COLUMN, STRATUM_COLUMN)
    ]
    missing = [n for n in needed if n not in batch]
    if missing:
        raise ValueError(
            f"batch is missing sample columns: {', '.join(missing)}"
        )
    return batch.select(needed)
