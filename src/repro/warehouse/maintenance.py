"""Incremental sample maintenance (paper Section 8 made durable).

Samples in the warehouse go stale as the base table grows. The
maintenance pipeline folds appended batches into a stored sample in one
pass over *only the new rows*, using the streaming CVOPT
(:class:`~repro.core.streaming.StreamingCVOptSampler`) warm-started
from the persisted sample + its pass-1 statistics:

* within each stratum the stored rows seed a reservoir whose ``seen``
  counter is the stratum population, so continuing Algorithm R over the
  batch yields an exact SRS of the extended population;
* per-stratum moments are merged exactly (moments are additive), so the
  Horvitz-Thompson weights and the CV-driven re-balance use true
  populations, not estimates;
* re-balancing is **shrink-only** (growing a reservoir would bias
  toward late rows), so a stratum whose optimal share *grows* over time
  cannot be topped up incrementally. That is the drift the
  **escalation rule** watches: when the predicted-CV objective of the
  maintained allocation degrades past ``cv_degradation_threshold``
  times the optimum for the same budget, the maintainer escalates to a
  full two-pass rebuild (when handed the full table) or flags
  ``needs_rebuild`` in the lineage.

Every refresh writes a *new immutable version* to the store and prunes
old ones, so concurrent readers keep serving the previous version until
the atomic pointer swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.allocation import allocate
from ..core.cvopt import CVOptSampler
from ..core.sample import StratifiedSample
from ..core.spec import GroupByQuerySpec
from ..core.streaming import StreamingCVOptSampler
from ..engine.statistics import (
    ColumnStats,
    StrataStatistics,
    collect_strata_statistics,
)
from ..engine.table import Table
from .store import SampleStore, StoredSample

__all__ = [
    "SampleMaintainer",
    "BuildReport",
    "RefreshReport",
    "StalenessInfo",
    "allocation_drift",
    "staleness_from_lineage",
]

#: Stand-in CV for groups an allocation cannot estimate (no rows) when
#: comparing objectives — finite so ratios stay comparable.
_CV_CAP = 10.0


@dataclass
class BuildReport:
    """Outcome of a full two-pass build."""

    name: str
    version: str
    rows: int
    strata: int
    budget: int
    source_rows: int


@dataclass
class RefreshReport:
    """Outcome of one maintenance round."""

    name: str
    version: str
    action: str  # "incremental" or "rebuild"
    rows_ingested: int
    source_rows: int  # population covered after the refresh
    sample_rows: int
    new_strata: int
    staleness: float  # rows ingested since last full build / base rows
    drift: float  # achieved / optimal predicted-CV objective (>= 1)
    needs_rebuild: bool


@dataclass
class StalenessInfo:
    """Lineage summary of a stored sample's maintenance state."""

    name: str
    version: str
    refresh_count: int
    rows_ingested: int
    base_rows: int
    staleness: float
    drift: float
    needs_rebuild: bool


class SampleMaintainer:
    """Builds samples into a store and keeps them fresh.

    Parameters
    ----------
    store:
        The :class:`~repro.warehouse.store.SampleStore` to read/write.
    cv_degradation_threshold:
        Escalate to a full rebuild when the maintained allocation's
        predicted-CV objective exceeds this multiple of the optimal
        objective at the same budget (on current statistics).
    keep_versions:
        Versions retained per sample after each write (older ones are
        pruned; the current version is always kept).
    """

    def __init__(
        self,
        store: SampleStore,
        cv_degradation_threshold: float = 1.5,
        keep_versions: int = 4,
        headroom: float = 2.0,
    ) -> None:
        if cv_degradation_threshold < 1.0:
            raise ValueError("cv_degradation_threshold must be >= 1")
        self.store = store
        self.cv_degradation_threshold = float(cv_degradation_threshold)
        self.keep_versions = int(keep_versions)
        self.headroom = float(headroom)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build(
        self,
        name: str,
        table: Table,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        table_name: Optional[str] = None,
        seed: int = 0,
    ) -> BuildReport:
        """Two-pass CVOPT build, persisted as a new version."""
        value_columns = list(value_columns)
        if not value_columns:
            raise ValueError("need at least one value column")
        spec = GroupByQuerySpec(
            group_by=tuple(group_by), aggregates=tuple(value_columns)
        )
        sampler = CVOptSampler([spec])
        sample = sampler.sample(table, budget, seed=seed)
        lineage = _fresh_lineage(value_columns[0], sample.source_rows)
        version = self.store.put(
            name, sample, table_name=table_name, lineage=lineage
        )
        self.store.prune(name, keep=self.keep_versions)
        return BuildReport(
            name=name,
            version=version,
            rows=sample.num_rows,
            strata=sample.allocation.num_strata,
            budget=sample.budget,
            source_rows=sample.source_rows,
        )

    # ------------------------------------------------------------------
    # refreshing
    # ------------------------------------------------------------------
    def refresh(
        self,
        name: str,
        batch: Table,
        full_table: Optional[Table] = None,
        seed: int = 0,
    ) -> RefreshReport:
        """Fold an appended ``batch`` into the stored sample.

        ``full_table`` (base table + all batches so far) enables the
        escalation path: when drift crosses the threshold and the full
        table is available, a two-pass rebuild replaces the incremental
        result; without it the refresh still lands but the new version's
        lineage carries ``needs_rebuild: True``.
        """
        stored = self.store.get(name)
        lineage = dict(stored.lineage)
        value_column = self._value_column(stored)
        batch = _align_batch(stored.sample, batch)

        sampler = StreamingCVOptSampler.resume(
            stored.sample,
            value_column,
            headroom=self.headroom,
            seed=seed,
        )
        old_strata = stored.sample.allocation.num_strata
        sampler.observe_table(batch)
        sample = sampler.finalize()
        # The streaming pass tracks only the maintenance column; fold
        # the batch's moments into every other column the build kept,
        # so the persisted statistics stay exact across refreshes.
        _merge_statistics(stored.sample.allocation.stats, batch, sample)

        drift = allocation_drift(sample, value_column)
        rows_ingested = (
            int(lineage.get("rows_ingested", 0)) + batch.num_rows
        )
        base_rows = int(lineage.get("base_rows", 0)) or stored.sample.source_rows
        staleness = rows_ingested / base_rows if base_rows else float("inf")
        needs_rebuild = bool(drift > self.cv_degradation_threshold)

        action = "incremental"
        if needs_rebuild and full_table is not None:
            # Rebuild for every column the original build tracked, not
            # just the maintenance column.
            stored_stats = stored.sample.allocation.stats
            spec = GroupByQuerySpec(
                group_by=sample.allocation.by,
                aggregates=tuple(
                    stored_stats.columns if stored_stats else (value_column,)
                ),
            )
            sample = CVOptSampler([spec]).sample(
                full_table, stored.sample.budget, seed=seed
            )
            drift = allocation_drift(sample, value_column)
            action = "rebuild"
            needs_rebuild = False
            lineage = _fresh_lineage(value_column, sample.source_rows)
            lineage["action"] = "rebuild"
        else:
            lineage.update(
                action=action,
                refresh_count=int(lineage.get("refresh_count", 0)) + 1,
                rows_ingested=rows_ingested,
                base_rows=base_rows,
                parent_version=stored.version,
            )
        lineage.update(
            value_column=value_column,
            staleness=0.0 if action == "rebuild" else staleness,
            drift=float(drift),
            needs_rebuild=needs_rebuild,
        )
        version = self.store.put(
            name,
            sample,
            table_name=stored.table_name,
            lineage=lineage,
            extra=stored.extra,
        )
        self.store.prune(name, keep=self.keep_versions)
        return RefreshReport(
            name=name,
            version=version,
            action=action,
            rows_ingested=batch.num_rows,
            source_rows=sample.source_rows,
            sample_rows=sample.num_rows,
            new_strata=sample.allocation.num_strata - old_strata,
            staleness=0.0 if action == "rebuild" else staleness,
            drift=float(drift),
            needs_rebuild=needs_rebuild,
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def staleness(self, name: str) -> StalenessInfo:
        """Maintenance state of the *current* stored version of ``name``.

        Reads the store (one ``meta.json``); raises :class:`KeyError`
        for unknown samples. For a lock-free in-memory view of the
        *served* version, use the warehouse service's lineage snapshot
        instead.
        """
        stored = self.store.get(name)
        lineage = stored.lineage
        base_rows = int(lineage.get("base_rows", 0)) or stored.sample.source_rows
        rows_ingested = int(lineage.get("rows_ingested", 0))
        return StalenessInfo(
            name=name,
            version=stored.version,
            refresh_count=int(lineage.get("refresh_count", 0)),
            rows_ingested=rows_ingested,
            base_rows=base_rows,
            staleness=staleness_from_lineage(
                lineage, stored.sample.source_rows
            ),
            drift=float(lineage.get("drift", 1.0)),
            needs_rebuild=bool(lineage.get("needs_rebuild", False)),
        )

    def _value_column(self, stored: StoredSample) -> str:
        column = stored.lineage.get("value_column")
        if column:
            return column
        stats = stored.sample.allocation.stats
        if stats is not None and stats.columns:
            return next(iter(stats.columns))
        raise ValueError(
            f"sample {stored.name!r} carries no value column for "
            "maintenance; rebuild it through SampleMaintainer.build"
        )


def staleness_from_lineage(lineage: Dict, fallback_base_rows: int = 0) -> float:
    """Staleness ratio recorded in a version's lineage dict.

    Staleness is *rows ingested since the last full build* divided by
    the base-table size at that build. A freshly built (or never
    refreshed) sample is 0.0; legacy metadata without ``base_rows``
    falls back to ``fallback_base_rows``, and a positive ingest against
    an unknown base yields ``inf`` (maximally stale — nothing can be
    promised about it).
    """
    rows_ingested = int(lineage.get("rows_ingested", 0))
    if not rows_ingested:
        return 0.0
    base_rows = int(lineage.get("base_rows", 0)) or int(fallback_base_rows)
    return rows_ingested / base_rows if base_rows else float("inf")


def allocation_drift(
    sample: StratifiedSample, value_column: str, cv_cap: float = _CV_CAP
) -> float:
    """How far a sample's allocation is from optimal for its own stats.

    Returns the ratio of the achieved predicted-CV l2 objective to the
    objective of the *optimal* allocation at the same budget, both
    computed from the sample's per-stratum statistics; 1.0 is perfect.
    """
    from ..aqp.planning import predict_group_cvs

    allocation = sample.allocation
    stats = allocation.stats
    if stats is None or value_column not in stats.columns:
        return 1.0
    data_cvs = np.nan_to_num(
        stats.stats_for(value_column).cv(mean_floor=1e-9)
    )
    achieved = predict_group_cvs(
        allocation.populations, data_cvs, allocation.sizes
    )
    optimal_sizes = allocate(
        data_cvs**2, sample.budget, allocation.populations
    )
    optimal = predict_group_cvs(
        allocation.populations, data_cvs, optimal_sizes
    )
    achieved = np.where(np.isfinite(achieved), achieved, cv_cap)
    optimal = np.where(np.isfinite(optimal), optimal, cv_cap)
    a = float(np.sqrt((achieved**2).sum()))
    o = float(np.sqrt((optimal**2).sum()))
    if o == 0.0:
        return 1.0 if a == 0.0 else float("inf")
    return a / o


def _merge_statistics(
    stored: Optional[StrataStatistics],
    batch: Table,
    sample: StratifiedSample,
) -> None:
    """Extend the refreshed sample's statistics beyond the maintenance
    column.

    Moments are additive, so for every other column the original build
    tracked, per-stratum ``(count, total, total_sq)`` over the extended
    population is exactly ``stored + batch`` — one vectorized pass over
    the batch, no rescan of old data.
    """
    final = sample.allocation.stats
    if stored is None or final is None:
        return
    columns = [
        c
        for c in stored.columns
        if c not in final.columns and c in batch
    ]
    if not columns:
        return
    batch_stats = collect_strata_statistics(
        batch, sample.allocation.by, columns
    )
    stored_idx = {tuple(k): i for i, k in enumerate(stored.keys)}
    batch_idx = {tuple(k): i for i, k in enumerate(batch_stats.keys)}
    n = final.num_strata
    for column in columns:
        s_cs = stored.stats_for(column)
        b_cs = batch_stats.stats_for(column)
        count = np.zeros(n)
        total = np.zeros(n)
        total_sq = np.zeros(n)
        for i, key in enumerate(final.keys):
            k = tuple(key)
            si = stored_idx.get(k)
            if si is not None:
                count[i] += s_cs.count[si]
                total[i] += s_cs.total[si]
                total_sq[i] += s_cs.total_sq[si]
            bi = batch_idx.get(k)
            if bi is not None:
                count[i] += b_cs.count[bi]
                total[i] += b_cs.total[bi]
                total_sq[i] += b_cs.total_sq[bi]
        final.columns[column] = ColumnStats(
            count=count, total=total, total_sq=total_sq
        )


def _fresh_lineage(value_column: str, base_rows: int) -> Dict:
    return {
        "action": "build",
        "refresh_count": 0,
        "rows_ingested": 0,
        "base_rows": int(base_rows),
        "value_column": value_column,
        "staleness": 0.0,
        "drift": 1.0,
        "needs_rebuild": False,
    }


def _align_batch(sample: StratifiedSample, batch: Table) -> Table:
    """Project ``batch`` onto the sample's payload columns.

    Missing columns are an error; extra ones are dropped — reservoir
    rows from different eras must share one column set, or finalizing
    the mixed rows would fail.
    """
    from ..core.sample import STRATUM_COLUMN, WEIGHT_COLUMN

    needed = [
        n
        for n in sample.table.column_names
        if n not in (WEIGHT_COLUMN, STRATUM_COLUMN)
    ]
    missing = [n for n in needed if n not in batch]
    if missing:
        raise ValueError(
            f"batch is missing sample columns: {', '.join(missing)}"
        )
    return batch.select(needed)
