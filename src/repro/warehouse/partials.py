"""Decomposable aggregates: per-shard partials and their exact merge.

The scatter-gather protocol rests on one algebraic fact: every
aggregate the engine serves over a stratified sample is a function of
per-group *additive moments*. With Horvitz-Thompson weights ``w``:

* ``COUNT``            = sum of ``w``                    (additive)
* ``SUM`` / ``COUNT_IF`` = sum of ``w * v``              (additive)
* ``AVG``              = sum(w*v) / sum(w)               (from moments)
* ``VAR`` / ``STD``    = from sum(w), sum(w*v), sum(w*v^2)
* ``MIN`` / ``MAX``    = min/max of per-shard extrema

Because shards partition the sample rows, each shard computes its
moments over its own rows and the front adds them — the same
Welford/Chan moment merge the streaming sampler uses for statistics,
applied per query group. ``MEDIAN`` is the one engine aggregate with
no such decomposition; queries using it (or any shape this module
cannot prove decomposable — joins, CTEs, CUBE, HAVING, computed group
keys) fall back to exact execution at the front.

:func:`decompose` turns a parsed query into a :class:`DecomposedQuery`
or ``None``; :func:`compute_partials` runs on a shard worker against
its slice of the sample; :func:`merge_partials` +
:func:`finalize_partials` run on the front and reproduce — modulo
floating-point summation order — exactly what the unsharded engine's
``GroupAggregateOp`` would have produced on the whole sample,
including output column names and post-aggregation expressions
(``SUM(x)/COUNT(*)`` etc. are evaluated over the merged moments with
the executor's own placeholder rewrite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.sample import STRATUM_COLUMN, WEIGHT_COLUMN, StratifiedSample
from ..engine.expr import (
    AggCall,
    ColumnRef,
    Expr,
    Star,
    collect_agg_calls,
    collect_column_refs,
    evaluate,
    evaluate_predicate,
    expr_to_sql,
    rewrite,
)
from ..engine.groupby import compute_group_keys
from ..engine.sql.ast import NamedTable, SelectItem, SelectQuery
from ..engine.sql.errors import QueryExecutionError
from ..engine.sql.operators import _column_from_array
from ..engine.table import Table

__all__ = [
    "DecomposedQuery",
    "ShardPartials",
    "compute_partials",
    "decompose",
    "finalize_partials",
    "merge_partials",
]

#: Aggregates with an exact moment/extremum decomposition. ``MEDIAN``
#: is deliberately absent.
DECOMPOSABLE_FUNCS = frozenset(
    {
        "COUNT", "SUM", "AVG", "MEAN", "MIN", "MAX",
        "VAR", "VARIANCE", "STD", "STDDEV", "COUNT_IF",
    }
)


@dataclass(frozen=True)
class DecomposedQuery:
    """A query proven decomposable into per-shard partials.

    ``items`` are the SELECT items with qualifiers stripped and
    aggregate calls replaced by ``__agg_i`` placeholder refs;
    ``agg_calls`` holds the deduplicated calls, index-aligned with the
    placeholders. ``output_names`` reproduces the unsharded engine's
    output schema (aliases, or the original expression's SQL).
    """

    table: str
    where: Optional[Expr]
    key_names: Tuple[str, ...]
    items: Tuple[SelectItem, ...]
    output_names: Tuple[str, ...]
    agg_calls: Tuple[AggCall, ...]
    order_by: Tuple[Tuple[str, bool], ...]
    limit: Optional[int]


@dataclass
class ShardPartials:
    """One shard's per-group partial moments for one query.

    ``keys`` are decoded group-key tuples; all arrays align with them.
    ``blocks[i]`` belongs to ``agg_calls[i]`` (``None`` for argument-
    less COUNT): weighted ``total``/``total_sq`` plus raw ``vmin``/
    ``vmax`` with infinity identities, so merging is a plain
    elementwise reduce.
    """

    keys: List[tuple]
    wcount: np.ndarray  # sum of HT weights per group
    support: np.ndarray  # raw sample rows per group
    blocks: List[Optional[Dict[str, np.ndarray]]]
    sample_version: Optional[str] = None


def _strip(name: str) -> str:
    return name.split(".")[-1]


def _strip_refs(expr: Expr) -> Expr:
    """Rewrite ``t.col`` references to bare ``col`` ones."""
    mapping = {
        ref: ColumnRef(_strip(ref.name))
        for ref in collect_column_refs(expr)
        if "." in ref.name
    }
    return rewrite(expr, mapping) if mapping else expr


def decompose(query: SelectQuery) -> Optional[DecomposedQuery]:
    """Prove ``query`` decomposable, or return ``None``.

    Supported: single-table aggregate SELECTs with plain-column group
    keys, any WHERE the engine can evaluate row-wise, SELECT items
    that are group keys or expressions over decomposable aggregates,
    ORDER BY on output columns, and LIMIT. Anything else — joins,
    subqueries, CTEs, CUBE, HAVING, MEDIAN, computed group keys —
    returns ``None`` and is executed exactly at the front.
    """
    if (
        query.ctes
        or query.with_cube
        or query.having is not None
        or not isinstance(query.from_clause, NamedTable)
        or not query.is_aggregate
    ):
        return None
    alias_map = {
        item.alias: item.expr for item in query.items if item.alias
    }
    key_names: List[str] = []
    for expr in query.group_by:
        if isinstance(expr, ColumnRef) and expr.name in alias_map:
            expr = alias_map[expr.name]
        if not isinstance(expr, ColumnRef):
            return None  # computed group key
        key_names.append(_strip(expr.name))

    agg_calls: List[AggCall] = []
    for item in query.items:
        agg_calls.extend(collect_agg_calls(item.expr))
    agg_calls = list(dict.fromkeys(agg_calls))
    for call in agg_calls:
        if call.func.upper() not in DECOMPOSABLE_FUNCS:
            return None
        if call.arg is not None and not isinstance(call.arg, Star):
            if collect_agg_calls(call.arg):
                return None  # nested aggregate
    stripped_calls = tuple(
        AggCall(call.func, _strip_refs(call.arg))
        if call.arg is not None and not isinstance(call.arg, Star)
        else call
        for call in agg_calls
    )

    # Rewrite items: strip qualifiers, then swap aggregate calls for
    # placeholder refs (the executor's own technique), and verify that
    # what remains only references group keys and placeholders.
    placeholders = {
        call: ColumnRef(f"__agg_{i}") for i, call in enumerate(agg_calls)
    }
    placeholder_names = {ref.name for ref in placeholders.values()}
    items: List[SelectItem] = []
    output_names: List[str] = []
    for i, item in enumerate(query.items):
        if isinstance(item.expr, Star):
            return None
        rewritten = _strip_refs(rewrite(item.expr, placeholders))
        for ref in collect_column_refs(rewritten):
            if (
                ref.name not in placeholder_names
                and ref.name not in key_names
            ):
                return None  # non-grouped bare column
        items.append(SelectItem(rewritten, item.alias))
        output_names.append(item.alias or _output_name(item.expr, i))

    order_by: List[Tuple[str, bool]] = []
    for order in query.order_by:
        expr = order.expr
        name = _strip(expr.name) if isinstance(expr, ColumnRef) else None
        if name is None or name not in output_names:
            return None
        order_by.append((name, order.ascending))

    where = _strip_refs(query.where) if query.where is not None else None
    if where is not None and collect_agg_calls(where):
        return None
    return DecomposedQuery(
        table=query.from_clause.name,
        where=where,
        key_names=tuple(key_names),
        items=tuple(items),
        output_names=tuple(output_names),
        agg_calls=stripped_calls,
        order_by=tuple(order_by),
        limit=query.limit,
    )


def _output_name(expr: Expr, index: int) -> str:
    # Mirrors the executor's naming for unaliased items.
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1]
    return expr_to_sql(expr)


# ----------------------------------------------------------------------
# shard side
# ----------------------------------------------------------------------
def compute_partials(
    sample: StratifiedSample, dq: DecomposedQuery
) -> ShardPartials:
    """Per-group partial moments over one shard's sample rows.

    Applies the WHERE filter, groups by the query keys and computes
    the weighted moment block of every aggregate argument — the exact
    per-shard summands of the unsharded kernels in
    :mod:`repro.engine.aggregates`.

    The table is first narrowed to the columns the decomposition can
    touch (keys, WHERE references, aggregate arguments, HT weights):
    with a lazy mmap-backed sample, ``Table.filter`` would otherwise
    materialize every column just to subset it, and the projection
    keeps a shard worker's resident set proportional to the query, not
    the sample.
    """
    table = sample.table
    needed = set(dq.key_names) | {WEIGHT_COLUMN}
    if dq.where is not None:
        needed.update(ref.name for ref in collect_column_refs(dq.where))
    for call in dq.agg_calls:
        if call.arg is not None and not isinstance(call.arg, Star):
            needed.update(ref.name for ref in collect_column_refs(call.arg))
    keep = [c for c in table.column_names if c in needed]
    if len(keep) < len(table.column_names):
        projected = table.select(keep)
        # Same immutable rows, shared buffers — the group-code cache
        # token stays valid on the projection.
        projected.cache_token = table.cache_token
        table = projected
    if dq.where is not None:
        table = table.filter(evaluate_predicate(dq.where, table))
    weights = (
        table.column(WEIGHT_COLUMN).values_numeric()
        if WEIGHT_COLUMN in table
        else np.ones(table.num_rows)
    )
    keys = compute_group_keys(table, dq.key_names)
    num_groups = keys.num_groups
    if not dq.key_names:
        # A full-table aggregate always has its one group, even over an
        # empty shard (SQL's COUNT=0 row) — the merge needs the slot.
        num_groups = 1
        tuples = [()]
    else:
        tuples = keys.key_tuples(table)
    gids = keys.gids
    wcount = np.bincount(gids, weights=weights, minlength=num_groups)
    support = np.bincount(gids, minlength=num_groups).astype(np.int64)
    blocks: List[Optional[Dict[str, np.ndarray]]] = []
    for call in dq.agg_calls:
        if call.arg is None or isinstance(call.arg, Star):
            blocks.append(None)
            continue
        values = np.asarray(evaluate(call.arg, table))
        if values.dtype.kind in ("O", "U", "S"):
            raise QueryExecutionError(
                "cannot aggregate string expression "
                f"{expr_to_sql(call.arg)}"
            )
        values = values.astype(np.float64)
        weighted = values * weights
        vmin = np.full(num_groups, np.inf)
        vmax = np.full(num_groups, -np.inf)
        if len(values):
            np.minimum.at(vmin, gids, values)
            np.maximum.at(vmax, gids, values)
        blocks.append(
            {
                "total": np.bincount(
                    gids, weights=weighted, minlength=num_groups
                ),
                "total_sq": np.bincount(
                    gids, weights=weighted * values, minlength=num_groups
                ),
                "vmin": vmin,
                "vmax": vmax,
            }
        )
    return ShardPartials(
        keys=[tuple(k) for k in tuples],
        wcount=wcount,
        support=support,
        blocks=blocks,
    )


# ----------------------------------------------------------------------
# front side
# ----------------------------------------------------------------------
def merge_partials(
    parts: Sequence[ShardPartials], num_calls: int
) -> ShardPartials:
    """Add per-shard moments group-by-group (exact, order-insensitive
    up to float summation order); extrema merge by min/max."""
    index: Dict[tuple, int] = {}
    for part in parts:
        for key in part.keys:
            index.setdefault(key, len(index))
    merged_keys = sorted(index, key=_merge_sort_key)
    index = {key: i for i, key in enumerate(merged_keys)}
    n = max(len(merged_keys), 1)
    wcount = np.zeros(n)
    support = np.zeros(n, dtype=np.int64)
    # An index needs a moment block iff any shard computed one — even a
    # shard with zero matching groups says whether the call takes an
    # argument, so an all-empty result still finalizes cleanly.
    blocks: List[Optional[Dict[str, np.ndarray]]] = [
        (
            {
                "total": np.zeros(n),
                "total_sq": np.zeros(n),
                "vmin": np.full(n, np.inf),
                "vmax": np.full(n, -np.inf),
            }
            if any(
                i < len(part.blocks) and part.blocks[i] is not None
                for part in parts
            )
            else None
        )
        for i in range(num_calls)
    ]
    for part in parts:
        if not part.keys:
            continue
        rows = np.asarray([index[key] for key in part.keys])
        np.add.at(wcount, rows, part.wcount[: len(rows)])
        np.add.at(support, rows, part.support[: len(rows)])
        for i, block in enumerate(part.blocks):
            if block is None:
                continue
            acc = blocks[i]
            np.add.at(acc["total"], rows, block["total"][: len(rows)])
            np.add.at(
                acc["total_sq"], rows, block["total_sq"][: len(rows)]
            )
            np.minimum.at(acc["vmin"], rows, block["vmin"][: len(rows)])
            np.maximum.at(acc["vmax"], rows, block["vmax"][: len(rows)])
    return ShardPartials(
        keys=list(merged_keys),
        wcount=wcount,
        support=support,
        blocks=blocks,
    )


def _merge_sort_key(key: tuple):
    return tuple(
        (v is None, isinstance(v, str), v if v is not None else 0)
        for v in key
    )


def _final_values(
    func: str, wcount: np.ndarray, block: Optional[Dict[str, np.ndarray]]
) -> np.ndarray:
    """The unsharded kernel's output, computed from merged moments."""
    func = func.upper()
    if func == "COUNT":
        return wcount.astype(np.float64)
    if block is None:
        raise QueryExecutionError(f"{func} requires an argument")
    if func in ("SUM", "COUNT_IF"):
        return block["total"].astype(np.float64)
    if func in ("AVG", "MEAN"):
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                wcount > 0, block["total"] / wcount, np.nan
            )
    if func == "MIN":
        out = block["vmin"].copy()
        out[np.isinf(out)] = np.nan
        return out
    if func == "MAX":
        out = block["vmax"].copy()
        out[np.isinf(out)] = np.nan
        return out
    if func in ("VAR", "VARIANCE", "STD", "STDDEV"):
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = np.where(wcount > 0, block["total"] / wcount, np.nan)
            ex2 = np.where(
                wcount > 0, block["total_sq"] / wcount, np.nan
            )
        var = ex2 - mean**2
        var = np.where(var < 0, 0.0, var)
        return np.sqrt(var) if func in ("STD", "STDDEV") else var
    raise QueryExecutionError(f"aggregate {func!r} is not decomposable")


def finalize_partials(
    dq: DecomposedQuery, merged: ShardPartials
) -> Table:
    """Assemble the final answer table from merged partials.

    Reproduces ``GroupAggregateOp``'s output assembly: a group-key
    context table plus one ``__agg_i`` array per aggregate, with each
    SELECT item evaluated over them, then ORDER BY / LIMIT.
    """
    # Grouped queries with no surviving group produce an empty table;
    # full-table aggregates always have their one () group.
    num_groups = len(merged.keys) if dq.key_names else 1
    wcount = merged.wcount[:num_groups]
    gtable_cols = {}
    for j, name in enumerate(dq.key_names):
        gtable_cols[name] = _column_from_array(
            np.asarray([key[j] for key in merged.keys])
        )
    gtable = (
        Table(gtable_cols)
        if gtable_cols
        else _group_context(num_groups)
    )
    extra = {
        f"__agg_{i}": _final_values(
            call.func,
            wcount,
            (
                {k: v[:num_groups] for k, v in merged.blocks[i].items()}
                if merged.blocks[i] is not None
                else None
            ),
        )
        for i, call in enumerate(dq.agg_calls)
    }
    out = {}
    for name, item in zip(dq.output_names, dq.items):
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.name in gtable:
            out[name] = gtable.column(expr.name)
        else:
            out[name] = _column_from_array(
                np.asarray(evaluate(expr, gtable, extra))
            )
    table = Table(out)
    if dq.order_by:
        arrays = []
        ascending = []
        for name, asc in dq.order_by:
            arrays.append(np.asarray(table.column(name).decode()))
            ascending.append(asc)
        # lexsort: last key is primary; numpy sorts ascending, so flip
        # descending numeric keys (strings sort via argsort fallback).
        order = np.arange(table.num_rows)
        for arr, asc in zip(reversed(arrays), reversed(ascending)):
            idx = np.argsort(arr[order], kind="stable")
            if not asc:
                idx = idx[::-1]
            order = order[idx]
        table = table.take(order)
    if dq.limit is not None:
        table = table.head(dq.limit)
    return table


def _group_context(num_groups: int) -> Table:
    from ..engine.schema import DType
    from ..engine.table import Column

    return Table(
        {
            "__group__": Column(
                DType.INT64, np.zeros(num_groups, dtype=np.int64)
            )
        }
    )
