"""Scatter-gather front over a sharded sample warehouse.

:class:`ShardedWarehouseService` presents the same surface as
:class:`~repro.warehouse.service.WarehouseService` — ``query``,
``query_with_contract``, ``build``, ``refresh``, ``register_table``,
``stats``, ``health`` — but its samples live in N ``shard-NN/``
sub-stores, each owned by a shard worker
(:mod:`repro.serve.worker`). The division of labor:

* **Routing, contracts, exact execution stay central.** The front
  keeps the real base tables and an :class:`~repro.aqp.session.AQPSession`
  whose "samples" are metadata stand-ins: the *merged* shard
  allocations (exact — strata are never split across shards, so keys,
  populations, sizes and per-column moments concatenate verbatim)
  under an empty row table. Sample selection, CV prediction and
  contract math therefore run the session's own code on the same
  numbers the unsharded service would see.
* **Row work scatters.** A decomposable aggregate query fans out to
  every shard worker concurrently; each returns per-group
  ``(count, total, total_sq)`` moment blocks over its slice, the front
  adds them (:func:`~repro.warehouse.partials.merge_partials`) and
  finalizes one answer table — numerically the unsharded answer up to
  float summation order. Non-decomposable queries (MEDIAN, HAVING,
  joins, ...) execute exactly at the front.
* **Maintenance parallelizes per shard.** A refresh batch is
  partitioned by stratum hash and folded into every shard at once,
  each worker hot-swapping its own new version; rebuild escalation is
  decided centrally (a shard only sees its strata) and pushed back
  down as freshly split pieces.

* **Column projection rides the scatter.** Workers adopt their
  sub-store samples lazily under the ``mmap`` backend (tables hold
  memory-mapped columns that load on first touch), and
  :func:`~repro.warehouse.partials.compute_partials` narrows each
  sample to the columns the decomposed query references before
  filtering — so a worker's resident set is the hot columns of its
  traffic, those pages live in the OS page cache, and N workers on
  one host share one physical copy rather than N deserialized ones.

``--shards 1`` deployments should not construct this class at all —
the CLI routes them to the plain ``WarehouseService`` so the
single-store layout stays byte-identical to previous releases.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from ..aqp.session import AQPResult, AQPSession, RouteDecision
from ..core.cvopt import CVOptSampler
from ..core.sample import StratifiedSample
from ..core.spec import GroupByQuerySpec
from ..engine.groupcache import default_group_code_cache
from ..engine.sql.errors import QueryExecutionError
from ..engine.sql.parser import parse_query
from ..engine.table import Table
from ..serve.worker import (
    InProcessShardClient,
    ProcessShardClient,
    ShardWorkerError,
)
from .contracts import (
    AccuracyContract,
    AccuracyContractViolation,
    ContractedResult,
    build_contract,
)
from .maintenance import (
    BuildReport,
    RefreshReport,
    WindowedBuildReport,
    _fresh_lineage,
    staleness_from_lineage,
)
from ..engine.sql.planner import extract_time_bounds
from ..obs import current_trace_id, default_registry, default_tracer
from .partials import decompose, finalize_partials, merge_partials
from .service import (
    LRUCache,
    RWLock,
    WindowedRefreshReport,
    _ANSWER_CACHE,
    _QUERIES,
    _QUERY_SECONDS,
    _route_label,
)
from .sharding import (
    SHARD_SCHEME,
    ShardedSampleStore,
    merge_shard_allocations,
    partition_table,
)
from .windows import (
    SLIDE_SUFFIX,
    covering_window_starts,
    merge_window_allocations,
    parse_window,
    parse_window_sample_name,
    partition_by_window,
    window_sample_name,
)

__all__ = ["ShardedWarehouseService"]

_TRACER = default_tracer()
_SHARD_RPC = default_registry().histogram(
    "repro_shard_rpc_seconds",
    "Per-shard worker RPC latency in seconds",
    ["op", "shard"],
)
_SHARD_FALLBACK = default_registry().counter(
    "repro_shard_fallback_total",
    "Sharded queries that fell back to exact execution, by reason",
    ["reason"],
)


class ShardedWarehouseService:
    """Thread-safe scatter-gather endpoint over N shard workers.

    ``store`` is a :class:`~repro.warehouse.sharding.ShardedSampleStore`
    or its root path (``shards`` is required when creating a new one).
    ``workers="process"`` spawns one OS process per shard (the
    deployment topology); ``"inprocess"`` runs the same protocol
    without process boundaries (tests, single-process setups, and any
    backend — like the memory backend — whose blobs other processes
    cannot read).
    """

    def __init__(
        self,
        store,
        tables: Optional[Mapping[str, Table]] = None,
        shards: Optional[int] = None,
        backend=None,
        cache_size: int = 128,
        cv_degradation_threshold: float = 1.5,
        keep_versions: int = 4,
        workers: str = "process",
    ) -> None:
        if workers not in ("process", "inprocess"):
            raise ValueError("workers must be 'process' or 'inprocess'")
        self.store = (
            store
            if isinstance(store, ShardedSampleStore)
            else ShardedSampleStore(store, shards=shards, backend=backend)
        )
        self.num_shards = self.store.num_shards
        self.cv_degradation_threshold = float(cv_degradation_threshold)
        self.keep_versions = int(keep_versions)
        self._session = AQPSession(tables)
        self._lock = RWLock()
        self._maintenance = threading.Lock()
        self._cache = LRUCache(cache_size)
        self._epoch = 0
        self._meta: Dict[str, Dict] = {}  # live merged per-sample view
        self._orphans: Dict[str, Dict] = {}  # base table not registered
        #: Windowed families rebuilt from the shards' window-tagged
        #: metas: ``base -> {"column", "width", "table_name",
        #: "group_by", "value_columns", "budget",
        #: "windows": {start: member name}}``. Decay and retention are
        #: unsupported on the sharded path (partials recompute from raw
        #: sample rows, so per-window weight scaling cannot apply).
        self._window_families: Dict[str, Dict] = {}
        #: Members behind each registered slide stand-in, for fan-out.
        self._slide_members: Dict[str, List[str]] = {}
        self.queries_served = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max(self.num_shards, 1),
            thread_name_prefix="shard-fanout",
        )
        worker_opts = {
            "cv_degradation_threshold": self.cv_degradation_threshold,
            "keep_versions": self.keep_versions,
        }
        if workers == "process":
            backend_name = (
                backend
                if isinstance(backend, str) or backend is None
                else getattr(backend, "name", None)
            )
            self.clients = [
                ProcessShardClient(
                    self.store.root, i, backend=backend_name, **worker_opts
                )
                for i in range(self.num_shards)
            ]
        else:
            self.clients = [
                InProcessShardClient(
                    self.store.root, i, backend=backend, **worker_opts
                )
                for i in range(self.num_shards)
            ]
        self.refresh_metadata()

    # ------------------------------------------------------------------
    # scatter plumbing
    # ------------------------------------------------------------------
    def _scatter(self, op: str, payloads=None) -> List[Dict]:
        """Send ``op`` to every shard concurrently; raises the first
        shard failure. ``payloads`` is one kwargs dict per shard (or
        None for an empty payload everywhere).

        Each request is submitted through a fresh
        ``contextvars.copy_context()`` because ``ThreadPoolExecutor``
        does not propagate context — without the copy, per-shard RPC
        spans opened in pool threads would detach from the request's
        trace.
        """
        payloads = payloads or [{} for _ in self.clients]
        futures = [
            self._pool.submit(
                contextvars.copy_context().run,
                self._timed_request,
                client,
                op,
                payload,
            )
            for client, payload in zip(self.clients, payloads)
        ]
        return [f.result() for f in futures]

    def _timed_request(
        self, client, op: str, payload: Dict
    ) -> Dict:
        """One shard RPC with a latency histogram sample and (when a
        trace is active in this context) a ``shard.rpc`` span."""
        shard = str(client.shard_index)
        t0 = time.perf_counter()
        try:
            with _TRACER.span("shard.rpc", op=op, shard=client.shard_index):
                return client.request(op, **payload)
        finally:
            _SHARD_RPC.observe(
                time.perf_counter() - t0, op=op, shard=shard
            )

    # ------------------------------------------------------------------
    # merged metadata
    # ------------------------------------------------------------------
    def refresh_metadata(self) -> None:
        """Rebuild the front's merged per-sample view from the shards.

        Pulls every shard's ``sample_meta``, merges the disjoint
        allocations and lineages, and swaps metadata stand-ins into the
        routing session (samples whose base table is not registered
        wait as orphans). Called after every structural change; cheap —
        metadata only, no sample rows cross the wire.
        """
        metas = self._scatter("sample_meta")
        names: Dict[str, None] = {}
        for meta in metas:
            for name in meta["samples"]:
                names.setdefault(name, None)
        merged: Dict[str, Dict] = {}
        for name in names:
            shard_metas = [meta["samples"].get(name) for meta in metas]
            if any(m is None for m in shard_metas):
                # A sample not yet live on every shard (mid-publish) is
                # not routable: merging a subset would under-count.
                continue
            allocation = merge_shard_allocations(
                [m["allocation"] for m in shard_metas]
            )
            table_name = next(
                (
                    meta["tables"].get(name)
                    for meta in metas
                    if meta["tables"].get(name)
                ),
                None,
            )
            versions = [m["version"] for m in shard_metas]
            merged[name] = {
                "table_name": table_name,
                "allocation": allocation,
                "versions": versions,
                "version": _join_versions(versions),
                "lineage": _merge_lineages(
                    [m["lineage"] for m in shard_metas]
                ),
                "window": shard_metas[0].get("window")
                or shard_metas[0]["lineage"].get("window"),
                "method": shard_metas[0]["method"],
                "rows": sum(m["rows"] for m in shard_metas),
                "source_rows": sum(m["source_rows"] for m in shard_metas),
                "budget": sum(m["budget"] for m in shard_metas),
            }
        with self._lock.write():
            for name in list(self._meta):
                if name not in merged:
                    self._session.drop_sample(name)
            self._meta = {}
            self._orphans = {}
            # Slides are merged views over members; any structural
            # change invalidates them, and the next query re-merges.
            self._window_families = {}
            self._slide_members = {}
            for name, info in merged.items():
                table_name = info["table_name"]
                if table_name and table_name in self._session.tables:
                    stand_in = StratifiedSample(
                        table=Table({}),
                        allocation=info["allocation"],
                        method=info["method"],
                        source_rows=info["source_rows"],
                        budget=info["budget"],
                    )
                    self._session.register_sample(
                        name, stand_in, table_name, replace=True,
                        window=info["window"],
                    )
                    self._meta[name] = info
                    if info["window"] is not None:
                        self._adopt_window_meta(name, info)
                else:
                    self._orphans[name] = info
                    # Refresh rolls windows forward against the shard
                    # stores alone, so the family registry must exist
                    # even while its members are orphaned (no base
                    # table registered — maintenance-only processes).
                    if info["window"] is not None:
                        self._adopt_window_meta(name, info)
            self._bump()

    def _adopt_window_meta(self, name: str, info: Dict) -> None:
        """Fold one merged window-member view into the family registry
        (caller holds the write lock)."""
        window = info["window"]
        parsed = parse_window_sample_name(name)
        base = parsed[0] if parsed else name
        lineage = info["lineage"]
        family = self._window_families.setdefault(
            base,
            {
                "column": str(window["column"]),
                "width": int(window["width"]),
                "table_name": info["table_name"],
                "group_by": list(info["allocation"].by),
                "value_columns": list(
                    lineage.get("value_columns") or []
                ),
                "budget": int(info["budget"]),
                "windows": {},
            },
        )
        family["windows"][int(window["start"])] = name

    # ------------------------------------------------------------------
    # registration / building
    # ------------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table at the front; orphaned
        shard samples waiting for it become routable."""
        with self._maintenance:
            with self._lock.write():
                self._session.register_table(name, table)
                self._bump()
        if any(
            info["table_name"] == name for info in self._orphans.values()
        ):
            self.refresh_metadata()

    def build(
        self,
        name: str,
        table_name: str,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        seed: int = 0,
    ) -> BuildReport:
        """Two-pass CVOPT build at the front, split by stratum hash,
        committed to every shard sub-store, then hot-swapped live on
        every worker."""
        value_columns = list(dict.fromkeys(value_columns))
        if not value_columns:
            raise ValueError("need at least one value column")
        with self._maintenance:
            with self._lock.read():
                table = self._session.tables.get(table_name)
            if table is None:
                raise KeyError(f"unknown base table {table_name!r}")
            spec = GroupByQuerySpec(
                group_by=tuple(group_by), aggregates=tuple(value_columns)
            )
            sample = CVOptSampler([spec]).sample(table, budget, seed=seed)
            lineage = _fresh_lineage(value_columns, sample.source_rows)
            versions = self.store.put(
                name, sample, table_name=table_name, lineage=lineage
            )
            self.store.prune(name, keep=self.keep_versions)
            self._scatter("reload", [{"name": name}] * self.num_shards)
        self.refresh_metadata()
        return BuildReport(
            name=name,
            version=_join_versions(versions),
            rows=sample.num_rows,
            strata=sample.allocation.num_strata,
            budget=sample.budget,
            source_rows=sample.source_rows,
            columns=list(value_columns),
        )

    def build_windowed(
        self,
        name: str,
        table_name: str,
        group_by: Sequence[str],
        value_columns: Sequence[str],
        budget: int,
        ts_column: str,
        window: str,
        decay: Optional[float] = None,
        retention: Optional[int] = None,
        seed: int = 0,
    ) -> WindowedBuildReport:
        """Windowed family on a sharded warehouse: one central CVOPT
        build per tumbling window, each member split by stratum hash
        across the shard sub-stores and hot-swapped everywhere.

        Windows and shards partition rows along orthogonal axes (time
        vs. stratum hash), so a sliding-window answer merges partials
        across both — each sum is exact. ``decay`` and ``retention``
        are rejected here: shard partials recompute from raw sample
        rows, so per-window weight scaling and horizon pruning live
        only on the unsharded path.
        """
        if decay is not None:
            raise ValueError(
                "decay is unsupported on a sharded warehouse"
            )
        if retention is not None:
            raise ValueError(
                "retention is unsupported on a sharded warehouse"
            )
        value_columns = list(dict.fromkeys(value_columns))
        if not value_columns:
            raise ValueError("need at least one value column")
        width = parse_window(window)
        report = WindowedBuildReport(
            name=name, column=ts_column, width=width
        )
        with self._maintenance:
            with self._lock.read():
                table = self._session.tables.get(table_name)
            if table is None:
                raise KeyError(f"unknown base table {table_name!r}")
            if ts_column not in table:
                raise KeyError(
                    f"timestamp column {ts_column!r} not in table"
                )
            spec = GroupByQuerySpec(
                group_by=tuple(group_by), aggregates=tuple(value_columns)
            )
            for start, part in partition_by_window(
                table, ts_column, width
            ).items():
                member = window_sample_name(name, start)
                sample = CVOptSampler([spec]).sample(
                    part, budget, seed=seed
                )
                window_block = {
                    "column": ts_column,
                    "width": width,
                    "start": int(start),
                    "end": int(start) + width,
                }
                lineage = _fresh_lineage(
                    value_columns, sample.source_rows
                )
                lineage["window"] = dict(window_block)
                lineage["max_event_ts"] = int(
                    part.column(ts_column).values_numeric().max()
                )
                versions = self.store.put(
                    member,
                    sample,
                    table_name=table_name,
                    lineage=lineage,
                    window=window_block,
                )
                self.store.prune(member, keep=self.keep_versions)
                self._scatter(
                    "reload", [{"name": member}] * self.num_shards
                )
                report.starts.append(int(start))
                report.windows.append(
                    BuildReport(
                        name=member,
                        version=_join_versions(versions),
                        rows=sample.num_rows,
                        strata=sample.allocation.num_strata,
                        budget=sample.budget,
                        source_rows=sample.source_rows,
                        columns=list(value_columns),
                    )
                )
        self.refresh_metadata()
        return report

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def refresh(
        self,
        name: str,
        batch: Table,
        seed: int = 0,
        columns: Optional[Sequence[str]] = None,
    ) -> RefreshReport:
        """Fold a batch into every shard in parallel.

        The batch is partitioned by the stratum hash of each row's
        group key, so every worker's streaming maintainer sees exactly
        the rows the unsharded maintainer would have folded into its
        strata; each shard hot-swaps its new version independently.
        When the merged drift crosses the escalation threshold, the
        front — which holds the full base table no single shard has —
        runs the two-pass rebuild centrally and pushes freshly split
        pieces back down.

        When ``name`` is a windowed family base, the batch is first
        partitioned by the family's timestamp column and each window
        rolled forward (see :meth:`_refresh_windowed`); the return
        value is then a :class:`WindowedRefreshReport`.
        """
        if name in self._window_families:
            return self._refresh_windowed(name, batch, seed=seed)
        with self._maintenance:
            info = self._meta.get(name) or self._orphans.get(name)
            if info is None:
                raise KeyError(f"unknown sample {name!r}")
            by = info["allocation"].by
            table_name = info["table_name"]
            with self._lock.read():
                base = (
                    self._session.tables.get(table_name)
                    if table_name
                    else None
                )
            pieces = partition_table(batch, by, self.num_shards)
            payloads = [
                {
                    "name": name,
                    "batch": piece,
                    "seed": seed,
                    "columns": list(columns) if columns else None,
                }
                for piece in pieces
            ]
            live = [i for i, p in enumerate(pieces) if p.num_rows]
            reports = [None] * self.num_shards
            futures = {
                i: self._pool.submit(
                    contextvars.copy_context().run,
                    self._timed_request,
                    self.clients[i],
                    "refresh",
                    payloads[i],
                )
                for i in live
            }
            for i, future in futures.items():
                reports[i] = future.result()["report"]
            grown = base.concat(batch) if base is not None else None
            if grown is not None:
                with self._lock.write():
                    self._session.register_table(table_name, grown)
                    self._bump()
            report = _merge_reports(name, reports, info)
            if report.needs_rebuild and grown is not None:
                report = self._rebuild(name, info, grown, table_name, seed)
        self.refresh_metadata()
        return report

    def _refresh_windowed(
        self, name: str, batch: Table, seed: int = 0
    ) -> WindowedRefreshReport:
        """Roll a sharded windowed family forward by one batch.

        Rows for the newest retained window refresh that member through
        the ordinary sharded refresh (stratum-hash fan-out); rows past
        it open fresh windows via central per-window builds; rows
        addressed to closed windows are frozen out of the samples but
        still grow the front's base table so exact answers see them.
        """
        family = self._window_families[name]
        column = family["column"]
        width = family["width"]
        table_name = family["table_name"]
        if column not in batch:
            raise ValueError(
                f"windowed family {name!r} partitions on column "
                f"{column!r}, which the batch does not carry"
            )
        report = WindowedRefreshReport(
            name=name, rows_ingested=batch.num_rows
        )
        newest = max(family["windows"], default=None)
        unsampled_rows: List[Table] = []  # frozen + fresh-window rows
        fresh_parts: List[Table] = []
        for start, part in partition_by_window(
            batch, column, width
        ).items():
            if newest is not None and start < newest:
                report.frozen_rows += part.num_rows
                unsampled_rows.append(part)
            elif start in family["windows"]:
                member = family["windows"][start]
                # The ordinary sharded member refresh also grows the
                # base table by this slice.
                sub = self.refresh(member, part, seed=seed)
                report.refreshed.append(start)
                report.reports.append(sub)
                report.version = sub.version
            else:
                fresh_parts.append(part)
                unsampled_rows.append(part)
        if fresh_parts:
            fresh = fresh_parts[0]
            for part in fresh_parts[1:]:
                fresh = fresh.concat(part)
            built = self._build_fresh_windows(
                name, family, fresh, seed=seed
            )
            report.opened.extend(built.starts)
            report.reports.extend(built.windows)
            if built.windows:
                report.version = built.windows[-1].version
        if unsampled_rows:
            # Rows no member refresh carried into the base table yet.
            extra = unsampled_rows[0]
            for part in unsampled_rows[1:]:
                extra = extra.concat(part)
            with self._maintenance:
                with self._lock.read():
                    base = self._session.tables.get(table_name)
                if base is not None:
                    with self._lock.write():
                        self._session.register_table(
                            table_name, base.concat(extra)
                        )
                        self._bump()
        self.refresh_metadata()
        return report

    def _build_fresh_windows(
        self, name: str, family: Dict, table: Table, seed: int = 0
    ) -> WindowedBuildReport:
        """Central per-window builds for windows a batch opened, split
        to the shard sub-stores and reloaded everywhere."""
        column = family["column"]
        width = family["width"]
        value_columns = list(family["value_columns"])
        report = WindowedBuildReport(
            name=name, column=column, width=width
        )
        spec = GroupByQuerySpec(
            group_by=tuple(family["group_by"]),
            aggregates=tuple(value_columns),
        )
        with self._maintenance:
            for start, part in partition_by_window(
                table, column, width
            ).items():
                member = window_sample_name(name, start)
                sample = CVOptSampler([spec]).sample(
                    part, family["budget"], seed=seed
                )
                window_block = {
                    "column": column,
                    "width": width,
                    "start": int(start),
                    "end": int(start) + width,
                }
                lineage = _fresh_lineage(
                    value_columns, sample.source_rows
                )
                lineage["window"] = dict(window_block)
                lineage["max_event_ts"] = int(
                    part.column(column).values_numeric().max()
                )
                versions = self.store.put(
                    member,
                    sample,
                    table_name=family["table_name"],
                    lineage=lineage,
                    window=window_block,
                )
                self.store.prune(member, keep=self.keep_versions)
                self._scatter(
                    "reload", [{"name": member}] * self.num_shards
                )
                report.starts.append(int(start))
                report.windows.append(
                    BuildReport(
                        name=member,
                        version=_join_versions(versions),
                        rows=sample.num_rows,
                        strata=sample.allocation.num_strata,
                        budget=sample.budget,
                        source_rows=sample.source_rows,
                        columns=list(value_columns),
                    )
                )
        return report

    def _rebuild(
        self, name: str, info: Dict, full_table: Table,
        table_name: Optional[str], seed: int,
    ) -> RefreshReport:
        """Central escalation: rebuild from the full base table at the
        shards' combined budget, split, commit, swap everywhere."""
        lineage = info["lineage"]
        value_columns = list(
            lineage.get("value_columns")
            or ([lineage["value_column"]] if "value_column" in lineage else [])
        ) or list(info["allocation"].stats.columns if info["allocation"].stats else [])
        spec = GroupByQuerySpec(
            group_by=tuple(info["allocation"].by),
            aggregates=tuple(value_columns),
        )
        sample = CVOptSampler([spec]).sample(
            full_table, info["budget"], seed=seed
        )
        fresh = _fresh_lineage(value_columns, sample.source_rows)
        fresh["action"] = "rebuild"
        fresh["refresh_count"] = int(lineage.get("refresh_count", 0)) + 1
        versions = self.store.put(
            name, sample, table_name=table_name, lineage=fresh
        )
        self.store.prune(name, keep=self.keep_versions)
        self._scatter("reload", [{"name": name}] * self.num_shards)
        return RefreshReport(
            name=name,
            version=_join_versions(versions),
            action="rebuild",
            rows_ingested=0,
            source_rows=sample.source_rows,
            sample_rows=sample.num_rows,
            new_strata=0,
            staleness=0.0,
            drift=1.0,
            needs_rebuild=False,
            columns=value_columns,
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _ensure_slide(self, sql: str) -> Optional[str]:
        """Register the metadata stand-in for the sliding-window set
        ``sql`` needs (mirror of the unsharded service's slide
        materialization, without rows: the merged-across-shards member
        allocations are merged again across windows, and query fan-out
        later scatters partials once per covered member).

        Returns a violation message when the range reaches below the
        oldest retained window, else ``None``.
        """
        if not self._window_families:
            return None
        try:
            parsed = parse_query(sql)
        except Exception:
            return None  # let the session raise the real error
        table_ref = getattr(parsed.from_clause, "name", None)
        for base, family in list(self._window_families.items()):
            if table_ref != family["table_name"]:
                continue
            bounds = extract_time_bounds(parsed, family["column"])
            if bounds is None:
                continue
            lo, hi = bounds
            if lo is None:
                continue
            with self._lock.read():
                retained = sorted(family["windows"])
            if not retained:
                continue
            width = family["width"]
            horizon = retained[-1] + width
            if lo < retained[0]:
                hi_text = hi if hi is not None else "now"
                return (
                    f"time range [{lo}, {hi_text}) on "
                    f"{family['column']!r} reaches below the retention "
                    f"horizon of windowed sample {base!r} (oldest "
                    f"retained window starts at {retained[0]})"
                )
            hi_eff = hi if hi is not None else horizon
            if hi_eff <= lo or hi_eff > horizon:
                continue
            starts = covering_window_starts(lo, hi_eff, width)
            if any(s not in family["windows"] for s in starts):
                continue
            if len(starts) > 1:
                self._register_slide(base, family, starts)
        return None

    def _register_slide(
        self, base: str, family: Dict, starts: Sequence[int]
    ) -> None:
        """Merge member metadata into a routable slide stand-in."""
        slide = base + SLIDE_SUFFIX
        members = [family["windows"][s] for s in starts]
        with self._lock.read():
            if self._slide_members.get(slide) == members:
                return
            infos = [self._meta.get(m) for m in members]
        if any(info is None for info in infos):
            return  # member mid-publish; next query retries
        allocation = merge_window_allocations(
            [info["allocation"] for info in infos]
        )
        width = family["width"]
        window_block = {
            "column": family["column"],
            "start": int(starts[0]),
            "end": int(starts[-1]) + width,
        }
        lineage = _merge_lineages([info["lineage"] for info in infos])
        lineage["action"] = "window-merge"
        lineage["window"] = dict(window_block)
        lineage["windows"] = [int(s) for s in starts]
        stand_in = StratifiedSample(
            table=Table({}),
            allocation=allocation,
            method=infos[0]["method"],
            source_rows=sum(info["source_rows"] for info in infos),
            budget=sum(info["budget"] for info in infos),
        )
        info = {
            "table_name": family["table_name"],
            "allocation": allocation,
            "versions": [info["version"] for info in infos],
            "version": "+".join(info["version"] for info in infos),
            "lineage": lineage,
            "window": window_block,
            "method": stand_in.method,
            "rows": sum(i["rows"] for i in infos),
            "source_rows": stand_in.source_rows,
            "budget": stand_in.budget,
        }
        with self._lock.write():
            self._session.register_sample(
                slide,
                stand_in,
                family["table_name"],
                replace=True,
                window=window_block,
            )
            self._meta[slide] = info
            self._slide_members[slide] = members
            self._bump()

    def query(self, sql: str, mode: str = "auto") -> AQPResult:
        """Answer ``sql`` by scatter-gather when the router picks a
        sample and the query decomposes; exactly at the front
        otherwise. Memoized per store epoch."""
        if mode not in ("auto", "approx", "exact"):
            raise ValueError("mode must be 'auto', 'approx' or 'exact'")
        t0 = time.perf_counter()
        self._ensure_slide(sql)
        key = (self._epoch, mode, sql)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            _ANSWER_CACHE.inc(result="hit")
            _TRACER.annotate(answer_cache="hit")
            _QUERIES.inc(route="cached")
            _QUERY_SECONDS.observe(time.perf_counter() - t0)
            return cached
        _ANSWER_CACHE.inc(result="miss")
        _TRACER.annotate(answer_cache="miss")
        result = self._answer(sql, mode)
        self.queries_served += 1
        if key[0] == self._epoch:
            self._cache.put(key, result)
        _QUERIES.inc(route=_route_label(result.route))
        _QUERY_SECONDS.observe(time.perf_counter() - t0)
        return result

    def query_with_contract(
        self,
        sql: str,
        mode: str = "auto",
        max_cv: Optional[float] = None,
        max_staleness: Optional[float] = None,
        on_violation: str = "fallback",
    ) -> ContractedResult:
        """Answer with an accuracy contract — same shape, semantics and
        violation handling as the unsharded service's method; the
        contract's ``sample_version`` names every shard's served
        version and its CV figures come from the merged allocation."""
        if on_violation not in ("fallback", "reject"):
            raise ValueError("on_violation must be 'fallback' or 'reject'")
        if mode not in ("auto", "approx", "exact"):
            raise ValueError("mode must be 'auto', 'approx' or 'exact'")
        t0 = time.perf_counter()
        below_retention = self._ensure_slide(sql)
        if below_retention is not None and (
            on_violation == "reject" or mode == "approx"
        ):
            constraints: Dict[str, float] = {}
            if max_cv is not None:
                constraints["max_cv"] = float(max_cv)
            if max_staleness is not None:
                constraints["max_staleness"] = float(max_staleness)
            _QUERIES.inc(route="rejected")
            raise AccuracyContractViolation(
                [below_retention],
                AccuracyContract(
                    executed="exact",
                    fallback_exact=False,
                    reason=below_retention,
                    constraints=constraints,
                    satisfied=False,
                ),
            )
        key = ("contract", self._epoch, mode, sql, max_cv, max_staleness,
               on_violation)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            _ANSWER_CACHE.inc(result="hit")
            _TRACER.annotate(answer_cache="hit")
            _QUERIES.inc(route="cached")
            _QUERY_SECONDS.observe(time.perf_counter() - t0)
            return cached
        _ANSWER_CACHE.inc(result="miss")
        _TRACER.annotate(answer_cache="miss")
        result = self._answer(sql, mode, max_cv=max_cv)
        route_label = _route_label(result.route)
        with _TRACER.span("warehouse.contract"):
            contract, violations = self._contract_for(
                result.route, mode, max_cv, max_staleness
            )
        if violations:
            if on_violation == "reject" or mode == "approx":
                _QUERIES.inc(route="rejected")
                raise AccuracyContractViolation(violations, contract)
            with _TRACER.span("warehouse.fallback_exact"):
                result = self._exact(sql)
            route_label = "fallback"
            contract = AccuracyContract(
                executed="exact",
                fallback_exact=True,
                reason="accuracy constraints unsatisfied by stored "
                "samples (" + "; ".join(violations) + "); executed "
                "exactly",
                constraints=contract.constraints,
                satisfied=True,
            )
        self.queries_served += 1
        answer = ContractedResult(result=result, contract=contract)
        if key[1] == self._epoch:
            self._cache.put(key, answer)
        _QUERIES.inc(route=route_label)
        _QUERY_SECONDS.observe(time.perf_counter() - t0)
        return answer

    def execute(self, sql: str) -> Table:
        """Exact execution over the front's base tables."""
        return self.query(sql, mode="exact").table

    def _exact(self, sql: str) -> AQPResult:
        with self._lock.read():
            return self._session.query(sql, mode="exact")

    def _answer(
        self, sql: str, mode: str, max_cv: Optional[float] = None
    ) -> AQPResult:
        start = time.perf_counter()
        if mode == "exact":
            return self._exact(sql)
        with _TRACER.span("aqp.parse"):
            parsed = parse_query(sql)
            dq = decompose(parsed)
        if dq is None:
            # MEDIAN / HAVING / joins / subqueries: no per-shard
            # partials exist. The front has no sample rows either, so
            # approximation is off the table — unlike the unsharded
            # service, which could still run such a query over its
            # local sample.
            if mode == "approx":
                raise QueryExecutionError(
                    "cannot answer approximately on a sharded warehouse: "
                    "query does not decompose into per-shard partials"
                )
            _SHARD_FALLBACK.inc(reason="non_decomposable")
            result = self._exact(sql)
            route = RouteDecision(
                None, None, None,
                "query does not decompose into per-shard partials; "
                "executing exactly",
            )
            return AQPResult(
                table=result.table,
                route=route,
                plan_cached=result.plan_cached,
                elapsed_seconds=time.perf_counter() - start,
            )
        with self._lock.read():
            with _TRACER.span("aqp.route"):
                route = self._session.route(parsed, mode, max_cv)
            sample_name = route.sample_name
        _TRACER.annotate(route=route.reason, sample=sample_name)
        if not route.approximate:
            result = self._exact(sql)
            return AQPResult(
                table=result.table,
                route=route,
                plan_cached=result.plan_cached,
                elapsed_seconds=time.perf_counter() - start,
            )
        trace_id = current_trace_id()
        # A slide stand-in has no rows anywhere; fan out once per
        # covered window member instead. Partials are additive across
        # shards *and* windows (disjoint rows either way), so one merge
        # over the whole response set is exact.
        with self._lock.read():
            fanout_names = self._slide_members.get(
                sample_name, [sample_name]
            )
        _TRACER.annotate(
            shard_fanout=self.num_shards * len(fanout_names)
        )
        try:
            responses = []
            for member in fanout_names:
                responses.extend(
                    self._scatter(
                        "partials",
                        [
                            {
                                "sql": sql,
                                "name": member,
                                "trace_id": trace_id,
                            }
                        ] * self.num_shards,
                    )
                )
        except ShardWorkerError as exc:
            if mode == "approx":
                raise
            _SHARD_FALLBACK.inc(reason="worker_error")
            result = self._exact(sql)
            route = RouteDecision(
                None, None, None,
                f"shard fan-out failed ({exc}); executing exactly",
            )
            return AQPResult(
                table=result.table,
                route=route,
                plan_cached=result.plan_cached,
                elapsed_seconds=time.perf_counter() - start,
            )
        if trace_id is not None:
            _TRACER.graft(
                [s for r in responses for s in r.get("spans", [])]
            )
        with _TRACER.span("shard.merge", shards=self.num_shards):
            merged = merge_partials(
                [r["partials"] for r in responses], len(dq.agg_calls)
            )
            table = finalize_partials(dq, merged)
        return AQPResult(
            table=table,
            route=route,
            plan_cached=False,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _contract_for(
        self,
        route: RouteDecision,
        mode: str,
        max_cv: Optional[float],
        max_staleness: Optional[float],
    ):
        if not route.approximate:
            return build_contract(
                route, mode, max_cv, max_staleness,
                sample_version=None, lineage={}, staleness=0.0,
                group_keys=None,
            )
        with self._lock.read():
            info = self._meta.get(route.sample_name, {})
            lineage = info.get("lineage", {})
            allocation = info.get("allocation")
        return build_contract(
            route, mode, max_cv, max_staleness,
            sample_version=info.get("version"),
            lineage=lineage,
            staleness=staleness_from_lineage(lineage),
            group_keys=(
                tuple(tuple(k) for k in allocation.keys)
                if allocation is not None
                else None
            ),
            window_bounds=route.window_bounds,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    def samples(self) -> List[str]:
        with self._lock.read():
            return list(self._meta)

    def served_versions(self) -> Dict[str, str]:
        with self._lock.read():
            return {
                name: info["version"] for name, info in self._meta.items()
            }

    def served_lineages(self) -> Dict[str, Dict]:
        with self._lock.read():
            return {
                name: dict(info["lineage"])
                for name, info in self._meta.items()
            }

    def sample_summaries(self) -> List[Dict]:
        with self._lock.read():
            out = []
            for name, info in self._meta.items():
                lineage = info["lineage"]
                tracked = list(lineage.get("value_columns") or [])
                out.append(
                    {
                        "name": name,
                        "version": info["version"],
                        "rows": info["rows"],
                        "strata": info["allocation"].num_strata,
                        "by": list(info["allocation"].by),
                        "columns": tracked,
                        "primary_column": tracked[0] if tracked else None,
                        "staleness": staleness_from_lineage(lineage),
                        "drift": float(lineage.get("drift", 1.0)),
                        "drift_by_column": {
                            c: float(d)
                            for c, d in (
                                lineage.get("drift_by_column") or {}
                            ).items()
                        },
                        "needs_rebuild": bool(
                            lineage.get("needs_rebuild", False)
                        ),
                        "window": info.get("window"),
                        "shards": self.num_shards,
                    }
                )
            return out

    def health(self) -> Dict:
        with self._lock.read():
            return {
                "status": "ok",
                "epoch": self._epoch,
                "tables": len(self._session.tables),
                "samples": len(self._meta),
                "queries_served": self.queries_served,
                "shards": {
                    "count": self.num_shards,
                    "alive": sum(1 for c in self.clients if c.alive),
                },
            }

    def stats(self) -> Dict:
        """Front counters plus a per-shard block gathered from every
        worker (each entry is that worker's full ``stats()`` snapshot —
        store accounting, caches, served versions)."""
        shard_stats = []
        for client in self.clients:
            try:
                shard_stats.append(client.request("stats")["stats"])
            except ShardWorkerError as exc:
                shard_stats.append(
                    {"shard": client.shard_index, "error": str(exc)}
                )
        with self._lock.read():
            return {
                "epoch": self._epoch,
                "queries_served": self.queries_served,
                "store": {
                    "root": str(self.store.root),
                    "shards": {
                        "count": self.num_shards,
                        "scheme": SHARD_SCHEME,
                    },
                },
                "answer_cache": self._cache.counters(),
                "groupcode_cache": default_group_code_cache().counters(),
                "tables": {
                    name: table.num_rows
                    for name, table in self._session.tables.items()
                },
                "samples": {
                    name: {
                        "version": info["version"],
                        "versions": list(info["versions"]),
                        "rows": info["rows"],
                        "strata": info["allocation"].num_strata,
                        "by": list(info["allocation"].by),
                        "staleness": staleness_from_lineage(
                            info["lineage"]
                        ),
                        "needs_rebuild": bool(
                            info["lineage"].get("needs_rebuild", False)
                        ),
                    }
                    for name, info in self._meta.items()
                },
                "shards": shard_stats,
            }

    def close(self) -> None:
        """Shut down every worker and the fan-out pool."""
        for client in self.clients:
            try:
                client.close()
            except Exception:
                pass
        self._pool.shutdown(wait=False)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self._epoch += 1
        self._cache.clear()


# ----------------------------------------------------------------------
# merge helpers
# ----------------------------------------------------------------------
def _join_versions(versions: Sequence[str]) -> str:
    """One display string for N per-shard versions: the common version
    when they agree (the usual case after a build/rebuild), else an
    explicit per-shard list."""
    unique = list(dict.fromkeys(versions))
    if len(unique) == 1:
        return unique[0]
    return "|".join(
        f"shard{i:02d}={v}" for i, v in enumerate(versions)
    )


def _merge_lineages(lineages: Sequence[Dict]) -> Dict:
    """Whole-warehouse lineage from per-shard lineages.

    Counters add (each shard ingested its disjoint rows of every
    batch), drift takes the worst shard (the contract must not promise
    better than the worst slice), and ``needs_rebuild`` is sticky if
    any shard raised it."""
    merged: Dict = dict(lineages[0]) if lineages else {}
    rows_ingested = sum(
        int(li.get("rows_ingested", 0)) for li in lineages
    )
    base_rows = sum(int(li.get("base_rows", 0)) for li in lineages)
    merged["rows_ingested"] = rows_ingested
    merged["base_rows"] = base_rows
    merged["staleness"] = (
        rows_ingested / base_rows if base_rows else 0.0
    )
    merged["drift"] = max(
        (float(li.get("drift", 1.0)) for li in lineages), default=1.0
    )
    drift_by_column: Dict[str, float] = {}
    for li in lineages:
        for column, drift in (li.get("drift_by_column") or {}).items():
            drift_by_column[column] = max(
                drift_by_column.get(column, 1.0), float(drift)
            )
    merged["drift_by_column"] = drift_by_column
    merged["needs_rebuild"] = any(
        bool(li.get("needs_rebuild", False)) for li in lineages
    )
    merged["refresh_count"] = max(
        (int(li.get("refresh_count", 0)) for li in lineages), default=0
    )
    # Windowed members: the newest covered event is the max over the
    # merged parts (shards see disjoint slices of each batch).
    event_ts = [
        int(li["max_event_ts"])
        for li in lineages
        if li.get("max_event_ts") is not None
    ]
    if event_ts:
        merged["max_event_ts"] = max(event_ts)
    columns: Dict[str, None] = {}
    for li in lineages:
        for column in li.get("value_columns") or []:
            columns.setdefault(column, None)
    if columns:
        merged["value_columns"] = list(columns)
    return merged


def _merge_reports(
    name: str, reports: Sequence[Optional[RefreshReport]], info: Dict
) -> RefreshReport:
    """One warehouse-level report from the per-shard refresh reports
    (``None`` for shards whose batch slice was empty)."""
    done = [r for r in reports if r is not None]
    versions = [
        r.version if r is not None else v
        for r, v in zip(reports, info["versions"])
    ]
    rows_ingested = sum(r.rows_ingested for r in done)
    columns: Dict[str, None] = {}
    for r in done:
        for c in r.columns:
            columns.setdefault(c, None)
    drift = max((r.drift for r in done), default=1.0)
    lineage = info["lineage"]
    prior_ingested = int(lineage.get("rows_ingested", 0))
    base_rows = int(lineage.get("base_rows", 0))
    staleness = (
        (prior_ingested + rows_ingested) / base_rows
        if base_rows
        else float("inf")
    )
    return RefreshReport(
        name=name,
        version=_join_versions(versions),
        action="incremental",
        rows_ingested=rows_ingested,
        # Shards with an empty slice keep their prior population, so
        # the covered total is simply prior + newly ingested rows.
        source_rows=info["source_rows"] + rows_ingested,
        sample_rows=sum(r.sample_rows for r in done),
        new_strata=sum(r.new_strata for r in done),
        staleness=staleness,
        drift=drift,
        needs_rebuild=any(r.needs_rebuild for r in done),
        columns=list(columns),
        drift_by_column={
            c: max(
                (r.drift_by_column.get(c, 1.0) for r in done),
                default=1.0,
            )
            for c in columns
        },
    )
