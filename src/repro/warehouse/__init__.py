"""Sample warehouse: persistent versioned samples, incremental
maintenance, workload-driven advising, and a concurrent serving layer.

The warehouse turns the in-memory sampling machinery into a long-lived
system: samples are built once (two-pass CVOPT), persisted with their
statistics, kept fresh in one pass per appended batch (streaming
CVOPT warm-start with shrink-only re-balance and a full-rebuild
escalation rule), and served to concurrent readers through the AQP
router behind a read-write lock and an answer cache.
"""

from .advisor import AdvisorPlan, Candidate, Recommendation, advise
from .contracts import (
    AccuracyContract,
    AccuracyContractViolation,
    ContractedResult,
)
from .maintenance import (
    BuildReport,
    RefreshReport,
    SampleMaintainer,
    StalenessInfo,
    allocation_drift,
    staleness_from_lineage,
)
from .service import LRUCache, RWLock, WarehouseService
from .store import SampleStore, StoredSample, StoreEntryStats

__all__ = [
    "SampleStore",
    "StoredSample",
    "StoreEntryStats",
    "SampleMaintainer",
    "BuildReport",
    "RefreshReport",
    "StalenessInfo",
    "allocation_drift",
    "staleness_from_lineage",
    "advise",
    "AdvisorPlan",
    "Candidate",
    "Recommendation",
    "WarehouseService",
    "RWLock",
    "LRUCache",
    "AccuracyContract",
    "AccuracyContractViolation",
    "ContractedResult",
]
