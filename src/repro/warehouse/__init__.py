"""Sample warehouse: persistent versioned samples, incremental
maintenance, workload-driven advising, and a concurrent serving layer.

The warehouse turns the in-memory sampling machinery into a long-lived
system: samples are built once (two-pass CVOPT), persisted with their
statistics behind a pluggable storage backend (npz / parquet / memory)
with cross-process write coordination (fsync'd manifest log + advisory
lock files), kept fresh in one pass per appended batch (streaming
CVOPT warm-start with shrink-only re-balance and a full-rebuild
escalation rule), and served to concurrent readers through the AQP
router behind a read-write lock and an answer cache.
"""

from .advisor import AdvisorPlan, Candidate, Recommendation, advise
from .backends import (
    BACKENDS,
    MemoryBackend,
    NpzBackend,
    ParquetArrowBackend,
    StorageBackend,
    available_backends,
    backend_for_format,
    resolve_backend,
)
from .contracts import (
    AccuracyContract,
    AccuracyContractViolation,
    ContractedResult,
)
from .coordination import FileLock, LockTimeout, ManifestLog, ManifestRecord
from .maintenance import (
    BuildReport,
    RefreshReport,
    SampleMaintainer,
    StalenessInfo,
    WindowedBuildReport,
    allocation_drift,
    allocation_drift_by_column,
    staleness_from_lineage,
    tracked_columns_from_lineage,
)
from .partials import (
    DecomposedQuery,
    ShardPartials,
    compute_partials,
    decompose,
    finalize_partials,
    merge_partials,
)
from .service import (
    LRUCache,
    RWLock,
    WarehouseService,
    WindowedRefreshReport,
)
from .sharded_service import ShardedWarehouseService
from .sharding import (
    SHARD_SCHEME,
    ShardedSampleStore,
    merge_shard_allocations,
    partition_table,
    shard_of_key,
    split_sample,
)
from .store import SampleStore, StoredSample, StoreEntryStats
from .windows import (
    SLIDE_SUFFIX,
    covering_window_starts,
    format_window,
    merge_window_allocations,
    merge_window_samples,
    parse_window,
    partition_by_window,
    window_decay_factors,
    window_sample_name,
    window_start,
)

__all__ = [
    "SampleStore",
    "StoredSample",
    "StoreEntryStats",
    "StorageBackend",
    "NpzBackend",
    "ParquetArrowBackend",
    "MemoryBackend",
    "BACKENDS",
    "resolve_backend",
    "backend_for_format",
    "available_backends",
    "FileLock",
    "LockTimeout",
    "ManifestLog",
    "ManifestRecord",
    "SampleMaintainer",
    "BuildReport",
    "RefreshReport",
    "StalenessInfo",
    "allocation_drift",
    "allocation_drift_by_column",
    "staleness_from_lineage",
    "tracked_columns_from_lineage",
    "advise",
    "AdvisorPlan",
    "Candidate",
    "Recommendation",
    "WarehouseService",
    "RWLock",
    "LRUCache",
    "AccuracyContract",
    "AccuracyContractViolation",
    "ContractedResult",
    "SHARD_SCHEME",
    "ShardedSampleStore",
    "ShardedWarehouseService",
    "shard_of_key",
    "split_sample",
    "merge_shard_allocations",
    "partition_table",
    "DecomposedQuery",
    "ShardPartials",
    "decompose",
    "compute_partials",
    "merge_partials",
    "finalize_partials",
    "SLIDE_SUFFIX",
    "WindowedBuildReport",
    "WindowedRefreshReport",
    "window_start",
    "window_sample_name",
    "parse_window",
    "format_window",
    "partition_by_window",
    "covering_window_starts",
    "window_decay_factors",
    "merge_window_allocations",
    "merge_window_samples",
]
