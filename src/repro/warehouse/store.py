"""Persistent, versioned sample store over pluggable backends.

A :class:`SampleStore` keeps materialized
:class:`~repro.core.sample.StratifiedSample` objects on disk, each under
its own name with an append-only sequence of immutable versions::

    root/
      manifest.log       # append-only commit log (fsync'd JSON lines)
      <name>/
        .lock            # advisory writer lock (absent when idle)
        CURRENT          # one line: the live version id, e.g. "v000003"
        v000001/
          rows.npz       # rows blob — format chosen by the backend
          meta.json      # allocation, statistics, lineage, storage block
        v000002/
          ...

The *physical* rows format is delegated to a
:class:`~repro.warehouse.backends.StorageBackend` (npz by default;
parquet/arrow and in-memory backends ship too). Each version's
``meta.json`` records the format that wrote it, so stores with mixed
formats stay fully readable whatever backend a reader configured.

Writes are safe across threads *and processes*:

* a new version is assembled in a hidden staging directory and renamed
  into place with ``os.replace`` — no reader ever lists a half-written
  version directory under a version id;
* the version is *committed* by a single fsync'd append to
  ``manifest.log``; :meth:`versions`/:meth:`get` read the manifest, so
  a crash between the rename and the append leaves an orphan directory
  that is simply invisible (and adoptable via
  :meth:`rebuild_manifest`);
* the ``CURRENT`` pointer is swapped with ``os.replace`` after the
  commit, so it always names a committed version;
* concurrent writers — other threads, the HTTP front's watch mode, a
  standalone ``warehouse daemon`` — are serialized per sample by an
  advisory lock file with stale-lock breaking
  (:class:`~repro.warehouse.coordination.FileLock`).

Readers never take locks. :meth:`get` without an explicit version also
*skips* damaged version directories (truncated rows, missing meta — the
debris of a crashed pre-manifest writer) and falls back to the newest
readable version instead of raising.

Besides the sample itself, a version persists the allocation's pass-1
per-stratum statistics (when the sampler kept them) so the maintenance
pipeline can resume the streaming CVOPT exactly where the last build
left off, plus a free-form ``lineage`` dict tracking refresh history
and staleness. See ``docs/STORAGE.md`` for the full on-disk contract.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import threading
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.sample import Allocation, StratifiedSample
from ..engine.statistics import (
    ColumnStats,
    StrataStatistics,
    summarize_column_stats,
)
from ..engine.table import Table
from .backends import (
    StorageBackend,
    backend_for_format,
    infer_storage,
    resolve_backend,
)
from .coordination import FileLock, ManifestLog, ManifestRecord

__all__ = [
    "SampleStore",
    "StoredSample",
    "StoreEntryStats",
    "derive_columns_block",
]

# Meta format history:
#   1 — pre-backend layout (no storage block)
#   2 — storage block (pluggable backends)
#   3 — per-column pipeline: a ``columns`` block ({tracked, primary})
#       names the value columns whose moment blocks the version keeps
#       exact; formats 1/2 still load (tracked columns are derived from
#       the lineage / statistics keys).
#   4 — time windows: an optional ``window`` block
#       ``{column, width, start, end}`` tags a version as one tumbling
#       window ``[start, end)`` of its family, partitioned on the
#       (integer) timestamp ``column``. Formats 1-3 still load with
#       ``window = None`` (an un-windowed, all-of-history sample).
_FORMAT_VERSION = 4
_CURRENT_FILE = "CURRENT"
_META_FILE = "meta.json"
_LOCK_FILE = ".lock"
_MANIFEST_FILE = "manifest.log"
_MANIFEST_LOCK = ".manifest.lock"

#: What a damaged version directory can raise while loading: truncated
#: or missing blobs, unparsable meta, unknown formats, and a memory /
#: parquet blob this process cannot materialize.
_CORRUPT_ERRORS = (
    OSError,
    EOFError,
    ValueError,  # includes json.JSONDecodeError and bad DType tags
    KeyError,
    RuntimeError,  # parquet version without pyarrow installed
    zipfile.BadZipFile,
    zlib.error,  # npz with intact zip directory but damaged members
)


@dataclass
class StoredSample:
    """One loaded version: the sample plus its warehouse metadata."""

    name: str
    version: str
    sample: StratifiedSample
    table_name: Optional[str] = None
    lineage: Dict = field(default_factory=dict)
    extra: Dict = field(default_factory=dict)
    path: Optional[pathlib.Path] = None
    storage: Dict = field(default_factory=dict)
    #: The version's ``columns`` block: ``{"tracked": [...], "primary":
    #: ...}`` — derived for pre-format-3 metas.
    columns: Dict = field(default_factory=dict)
    #: Format-4 ``window`` block ``{column, width, start, end}`` when
    #: this version is one tumbling window of a family; ``None`` for
    #: all-of-history samples and every pre-format-4 meta.
    window: Optional[Dict] = None

    @property
    def statistics(self) -> Optional[StrataStatistics]:
        return self.sample.allocation.stats

    @property
    def tracked_columns(self) -> list:
        """Value columns whose per-stratum moments this version keeps
        exact (primary first)."""
        return list(self.columns.get("tracked") or [])

    @property
    def primary_column(self) -> Optional[str]:
        """The column driving incremental re-balancing."""
        return self.columns.get("primary")


@dataclass
class StoreEntryStats:
    """Size/version accounting for one stored sample."""

    name: str
    current_version: Optional[str]
    num_versions: int
    rows: int
    strata: int
    bytes_on_disk: int
    method: str
    by: tuple
    lineage: Dict = field(default_factory=dict)
    backend: str = "npz"
    #: ``{"tracked": [...], "primary": ..., "stats": {col: summary}}``
    #: where each summary is
    #: :func:`~repro.engine.statistics.summarize_column_stats` output.
    columns: Dict = field(default_factory=dict)


class SampleStore:
    """Directory-backed store of named, versioned stratified samples.

    Parameters
    ----------
    root:
        Store directory (created if missing).
    backend:
        Physical rows format for *writes*: a backend name (``"npz"``,
        ``"parquet"``, ``"memory"``), a
        :class:`~repro.warehouse.backends.StorageBackend` instance, or
        None for the npz default. Reads always dispatch on each
        version's recorded format, independent of this choice.
    lock_timeout:
        Seconds a writer waits for a sample's advisory lock before
        raising :class:`~repro.warehouse.coordination.LockTimeout`.
    stale_lock_timeout:
        Age beyond which a held lock is presumed abandoned and broken
        (dead same-host holders are broken immediately).
    """

    def __init__(
        self,
        root,
        backend=None,
        lock_timeout: float = 10.0,
        stale_lock_timeout: float = 30.0,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.backend: StorageBackend = resolve_backend(backend)
        self.lock_timeout = float(lock_timeout)
        self.stale_lock_timeout = float(stale_lock_timeout)
        # Per-sample in-process mutexes: threads of one process contend
        # per name (cheap), the FileLock handles other processes — a
        # thread blocked on another process's lock must not stall
        # writes to unrelated samples.
        self._write_mutexes: Dict[str, threading.Lock] = {}
        self._write_mutexes_guard = threading.Lock()
        self.manifest = ManifestLog(self.root / _MANIFEST_FILE)
        self._state_lock = threading.Lock()
        self._versions_view: Dict[str, Dict[str, Dict]] = {}
        self._offset = 0
        self._records = 0
        self._skipped = 0
        self._readers: Dict[str, StorageBackend] = {}
        self._ensure_manifest()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put(
        self,
        name: str,
        sample: StratifiedSample,
        table_name: Optional[str] = None,
        lineage: Optional[Dict] = None,
        extra: Optional[Dict] = None,
        window: Optional[Dict] = None,
    ) -> str:
        """Write ``sample`` as the next version of ``name``; returns the
        new version id. The version becomes visible atomically (to this
        and every other process) when its manifest record commits.
        ``window`` tags the version as one tumbling window
        (``{column, width, start, end}``)."""
        _validate_name(name)
        with self._write_mutex(name):
            sample_dir = self.root / name
            sample_dir.mkdir(parents=True, exist_ok=True)
            with self._sample_lock(sample_dir):
                version = self._next_version(name, sample_dir)
                staging = sample_dir / f".staging-{version}"
                if staging.exists():
                    shutil.rmtree(staging)
                staging.mkdir()
                try:
                    storage = self.backend.put_rows(staging, sample.table)
                    meta = self._encode_meta(
                        name, version, sample, table_name, lineage, extra,
                        storage, window,
                    )
                    (staging / _META_FILE).write_text(
                        json.dumps(meta, indent=2)
                    )
                    os.replace(staging, sample_dir / version)
                except BaseException:
                    self._discard_staging(staging)
                    raise
                rename_hook = getattr(self.backend, "rename", None)
                if rename_hook is not None:
                    rename_hook(staging, sample_dir / version)
                self.manifest.append(
                    ManifestRecord(
                        op="put", name=name, version=version,
                        storage=storage,
                    )
                )
                _swap_current(sample_dir, version)
        return version

    def delete(self, name: str) -> None:
        """Remove a sample and all its versions."""
        sample_dir = self._sample_dir(name)
        with self._write_mutex(name), self._sample_lock(sample_dir):
            for version in self._merged_versions(name, sample_dir):
                self._release_blob(name, sample_dir / version)
            shutil.rmtree(sample_dir)
            self.manifest.append(ManifestRecord(op="delete", name=name))

    def prune(self, name: str, keep: int = 2) -> List[str]:
        """Drop all but the newest ``keep`` versions; returns the ids
        removed. The current version is always kept."""
        if keep < 1:
            raise ValueError("keep must be >= 1")
        sample_dir = self._sample_dir(name)
        with self._write_mutex(name), self._sample_lock(sample_dir):
            versions = self._merged_versions(name, sample_dir)
            current = _read_current(sample_dir)
            doomed = [v for v in versions[:-keep] if v != current]
            for version in doomed:
                self._release_blob(name, sample_dir / version)
                shutil.rmtree(sample_dir / version, ignore_errors=True)
            if doomed:
                self.manifest.append(
                    ManifestRecord(op="prune", name=name, versions=doomed)
                )
        return doomed

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted names of every sample with at least one committed
        version (reads the manifest, validated against the directory).

        Mirrors the :meth:`versions` recovery view: a directory the
        manifest knows nothing about (hand-copied sample, pre-manifest
        store whose rebuild was skipped) is still listed when it holds
        version directories.
        """
        self._refresh_state()
        with self._state_lock:
            known = {
                name: set(versions)
                for name, versions in self._versions_view.items()
                if versions
            }
        out = {
            name
            for name, versions in known.items()
            if any((self.root / name / v).is_dir() for v in versions)
        }
        for p in self.root.iterdir():
            if (
                p.is_dir()
                and not p.name.startswith(".")
                and p.name not in known
                and _list_versions(p)
            ):
                out.add(p.name)
        return sorted(out)

    def __contains__(self, name: str) -> bool:
        """Whether ``name`` exists with at least one version (never
        raises, even for syntactically invalid names)."""
        try:
            sample_dir = self._sample_dir(name)
        except (KeyError, ValueError):
            return False
        return bool(self._merged_versions(name, sample_dir))

    def versions(self, name: str) -> List[str]:
        """Committed version ids of ``name``, oldest first (manifest
        view); raises :class:`KeyError` for unknown samples."""
        sample_dir = self._sample_dir(name)
        self._refresh_state()
        with self._state_lock:
            committed = sorted(self._versions_view.get(name, {}))
        listed = [v for v in committed if (sample_dir / v).is_dir()]
        if listed:
            return listed
        # Recovery view: manifest knows nothing (pre-manifest store
        # whose rebuild was skipped, or a log reset) — trust the disk.
        return _list_versions(sample_dir)

    def current_version(self, name: str) -> Optional[str]:
        """The live version id of ``name`` (None when the pointer is
        missing and no versions exist); raises :class:`KeyError` for
        unknown samples."""
        return _read_current(self._sample_dir(name))

    def get(
        self,
        name: str,
        version: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> StoredSample:
        """Load ``name`` at ``version`` (default: the current one).

        ``columns`` is a projection hint forwarded to the storage
        backend: only the named columns need to come back on the sample
        table (unknown names are ignored; ``None`` means all). Callers
        that pass it own the consequences — the returned table simply
        lacks the other columns.

        Without an explicit ``version``, damaged version directories —
        truncated rows from a crashed writer, missing meta, a blob this
        process cannot materialize — are *skipped* and the newest
        readable version is returned instead; :class:`KeyError` is
        raised only when no version can be loaded at all. An explicit
        ``version`` is loaded exactly, propagating any decode error.
        """
        sample_dir = self._sample_dir(name)
        if version is not None:
            if not (sample_dir / version).is_dir():
                raise KeyError(
                    f"sample {name!r} has no version {version!r}; "
                    "available: "
                    + ", ".join(self._merged_versions(name, sample_dir))
                )
            return self._load_version(name, sample_dir, version, columns)
        candidates = self._read_candidates(name, sample_dir)
        if not candidates:
            raise KeyError(f"sample {name!r} has no current version")
        failures = []
        for candidate in candidates:
            try:
                return self._load_version(name, sample_dir, candidate, columns)
            except _CORRUPT_ERRORS as exc:
                failures.append(f"{candidate}: {type(exc).__name__}: {exc}")
        raise KeyError(
            f"sample {name!r} has no readable version; "
            "skipped: " + "; ".join(failures)
        )

    def stats(self) -> List[StoreEntryStats]:
        """Per-sample accounting over the whole store.

        Safe against concurrent writers: a sample pruned or deleted
        mid-walk is skipped rather than raising (the snapshot simply
        reflects one side of the race).
        """
        out = []
        for name in self.names():
            try:
                entry = self._entry_stats(name)
            except FileNotFoundError:
                continue  # pruned/deleted underneath us
            out.append(entry)
        return out

    def manifest_position(self) -> Dict:
        """Where the manifest stands, for ``/stats`` and monitoring:
        byte offset consumed, committed records seen, unparsable lines
        skipped (non-zero means the log needs :meth:`rebuild_manifest`)."""
        self._refresh_state()
        with self._state_lock:
            return {
                "path": str(self.manifest.path),
                "offset": self._offset,
                "records": self._records,
                "skipped": self._skipped,
            }

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def rebuild_manifest(self) -> List[Dict]:
        """Adopt every complete version directory the manifest missed.

        The recovery path for pre-manifest stores, hand-copied samples,
        and crashes between a version rename and its commit append:
        scans the directory tree and appends a ``put`` record (flagged
        ``recovered``) for each version directory that has a meta file
        and a rows blob but no manifest record. Serialized across
        processes by a store-wide lock. Returns the adopted
        ``{"name", "version"}`` pairs.
        """
        adopted: List[Dict] = []
        with FileLock(
            self.root / _MANIFEST_LOCK,
            timeout=self.lock_timeout,
            stale_timeout=self.stale_lock_timeout,
        ):
            self._refresh_state()
            with self._state_lock:
                known = {
                    name: set(versions)
                    for name, versions in self._versions_view.items()
                }
            for sample_dir in sorted(self.root.iterdir()):
                if not sample_dir.is_dir() or sample_dir.name.startswith("."):
                    continue
                name = sample_dir.name
                for version in _list_versions(sample_dir):
                    if version in known.get(name, set()):
                        continue
                    storage = _storage_block_of(sample_dir / version)
                    if storage is None:
                        continue  # incomplete: not adoptable
                    self.manifest.append(
                        ManifestRecord(
                            op="put", name=name, version=version,
                            storage=storage, recovered=True,
                        )
                    )
                    adopted.append({"name": name, "version": version})
        return adopted

    # ------------------------------------------------------------------
    # manifest state
    # ------------------------------------------------------------------
    def _ensure_manifest(self) -> None:
        """Migration: a pre-manifest store (version directories but no
        log) gets its manifest rebuilt from the directory tree once, at
        open time."""
        if self.manifest.exists():
            return
        has_versions = any(
            p.is_dir()
            and not p.name.startswith(".")
            and _list_versions(p)
            for p in self.root.iterdir()
        )
        if has_versions:
            self.rebuild_manifest()

    def _refresh_state(self) -> None:
        """Fold newly committed manifest records into the in-memory
        view (cheap no-op when the log has not grown)."""
        with self._state_lock:
            size = self.manifest.size()
            if size < self._offset:
                # Log shrank underneath us (operator reset): replay all.
                self._versions_view.clear()
                self._offset = self._records = self._skipped = 0
            elif size == self._offset:
                return
            records, offset, skipped = self.manifest.replay(self._offset)
            self._offset = offset
            self._records += len(records)
            self._skipped += skipped
            for record in records:
                if record.op == "put" and record.version:
                    self._versions_view.setdefault(record.name, {})[
                        record.version
                    ] = record.storage or {}
                elif record.op == "prune":
                    have = self._versions_view.get(record.name, {})
                    for version in record.versions or []:
                        have.pop(version, None)
                elif record.op == "delete":
                    self._versions_view.pop(record.name, None)

    def _merged_versions(
        self, name: str, sample_dir: pathlib.Path
    ) -> List[str]:
        """Committed ∪ on-disk version ids, oldest first — the writer's
        view (version-id allocation, prune, delete must account for
        uncommitted orphans too)."""
        self._refresh_state()
        with self._state_lock:
            committed = set(self._versions_view.get(name, {}))
        return sorted(committed | set(_list_versions(sample_dir)))

    def _read_candidates(
        self, name: str, sample_dir: pathlib.Path
    ) -> List[str]:
        """Versions to try for a default :meth:`get`: the CURRENT
        pointer first, then every other committed version newest
        first."""
        versions = self.versions(name)
        current = _read_current(sample_dir)
        ordered = []
        if current and (sample_dir / current).is_dir():
            ordered.append(current)
        ordered.extend(
            v for v in reversed(versions) if v not in ordered
        )
        return ordered

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load_version(
        self,
        name: str,
        sample_dir: pathlib.Path,
        version: str,
        columns: Optional[Sequence[str]] = None,
    ) -> StoredSample:
        version_dir = sample_dir / version
        meta = json.loads((version_dir / _META_FILE).read_text())
        storage = meta.get("storage") or {
            "backend": "npz", "format": "npz", "rows_file": "rows.npz",
        }
        reader = self._reader_for(storage)
        if columns is None:
            # Two-argument form keeps third-party backends written
            # against the pre-projection protocol working.
            table = reader.get_rows(version_dir, storage)
        else:
            table = reader.get_rows(version_dir, storage, columns=columns)
        sample = self._decode_sample(table, meta)
        return StoredSample(
            name=name,
            version=version,
            sample=sample,
            table_name=meta.get("table_name"),
            lineage=meta.get("lineage") or {},
            extra=meta.get("extra") or {},
            path=version_dir,
            storage=storage,
            columns=_columns_block_of(meta),
            window=meta.get("window"),
        )

    def _reader_for(self, storage: Dict) -> StorageBackend:
        fmt = storage.get("format") or "npz"
        if getattr(self.backend, "name", None) == storage.get("backend"):
            # Prefer the configured instance (shares in-process blobs
            # for the memory backend).
            if fmt != "npz" or self.backend.name == "npz":
                return self.backend
        reader = self._readers.get(fmt)
        if reader is None:
            reader = backend_for_format(fmt)
            self._readers[fmt] = reader
        return reader

    def _entry_stats(self, name: str) -> StoreEntryStats:
        sample_dir = self.root / name
        versions = self.versions(name)
        current = _read_current(sample_dir)
        rows = strata = 0
        method = ""
        by: tuple = ()
        lineage: Dict = {}
        backend = "npz"
        columns: Dict = {}
        if current is not None and (sample_dir / current).is_dir():
            try:
                meta = json.loads(
                    (sample_dir / current / _META_FILE).read_text()
                )
            except (OSError, ValueError):
                meta = {}  # torn current version: report sizes only
            rows = int(meta.get("sample_rows", 0))
            allocation = meta.get("allocation") or {}
            strata = len(allocation.get("keys", ()))
            method = meta.get("method", "")
            by = tuple(allocation.get("by", ()))
            lineage = meta.get("lineage") or {}
            backend = (meta.get("storage") or {}).get("backend", "npz")
            columns = _columns_block_of(meta)
            columns["stats"] = _column_stat_summaries(meta)
        nbytes = 0
        for f in sample_dir.rglob("*"):
            try:
                if f.is_file():
                    nbytes += f.stat().st_size
            except FileNotFoundError:
                continue  # file pruned between listing and stat
        return StoreEntryStats(
            name=name,
            current_version=current,
            num_versions=len(versions),
            rows=rows,
            strata=strata,
            bytes_on_disk=nbytes,
            method=method,
            by=by,
            lineage=lineage,
            backend=backend,
            columns=columns,
        )

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _encode_meta(
        self, name, version, sample, table_name, lineage, extra, storage,
        window=None,
    ) -> Dict:
        allocation = sample.allocation
        meta = {
            "format": _FORMAT_VERSION,
            "name": name,
            "version": version,
            "method": sample.method,
            "budget": int(sample.budget),
            "source_rows": int(sample.source_rows),
            "sample_rows": int(sample.num_rows),
            "table_name": table_name,
            "storage": dict(storage),
            "allocation": {
                "by": list(allocation.by),
                "keys": [_encode_key(k) for k in allocation.keys],
                "populations": [int(x) for x in allocation.populations],
                "sizes": [int(x) for x in allocation.sizes],
            },
            "lineage": dict(lineage or {}),
            "extra": dict(extra or {}),
            "columns": derive_columns_block(
                dict(lineage or {}), allocation.stats
            ),
        }
        if window is not None:
            meta["window"] = {
                "column": window["column"],
                "width": int(window["width"]),
                "start": int(window["start"]),
                "end": int(window["end"]),
            }
        if allocation.scores is not None:
            meta["allocation"]["scores"] = [
                float(x) for x in allocation.scores
            ]
        if allocation.stats is not None:
            meta["statistics"] = {
                column: {
                    "count": [float(x) for x in cs.count],
                    "total": [float(x) for x in cs.total],
                    "total_sq": [float(x) for x in cs.total_sq],
                }
                for column, cs in allocation.stats.columns.items()
            }
        return meta

    def _decode_sample(self, table: Table, meta: Dict) -> StratifiedSample:
        alloc_meta = meta["allocation"]
        keys = [_decode_key(k) for k in alloc_meta["keys"]]
        populations = np.asarray(alloc_meta["populations"], dtype=np.int64)
        stats = None
        if meta.get("statistics"):
            stats = StrataStatistics(
                by=tuple(alloc_meta["by"]),
                keys=keys,
                sizes=populations,
            )
            for column, cs in meta["statistics"].items():
                stats.columns[column] = ColumnStats(
                    count=np.asarray(cs["count"], dtype=np.float64),
                    total=np.asarray(cs["total"], dtype=np.float64),
                    total_sq=np.asarray(cs["total_sq"], dtype=np.float64),
                )
        scores = alloc_meta.get("scores")
        allocation = Allocation(
            by=tuple(alloc_meta["by"]),
            keys=keys,
            populations=populations,
            sizes=np.asarray(alloc_meta["sizes"], dtype=np.int64),
            scores=(
                np.asarray(scores, dtype=np.float64)
                if scores is not None
                else None
            ),
            stats=stats,
        )
        return StratifiedSample(
            table=table,
            allocation=allocation,
            method=meta["method"],
            source_rows=int(meta["source_rows"]),
            budget=int(meta["budget"]),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _write_mutex(self, name: str) -> threading.Lock:
        with self._write_mutexes_guard:
            return self._write_mutexes.setdefault(name, threading.Lock())

    def _sample_lock(self, sample_dir: pathlib.Path) -> FileLock:
        return FileLock(
            sample_dir / _LOCK_FILE,
            timeout=self.lock_timeout,
            stale_timeout=self.stale_lock_timeout,
        )

    def _next_version(self, name: str, sample_dir: pathlib.Path) -> str:
        versions = self._merged_versions(name, sample_dir)
        last = int(versions[-1][1:]) if versions else 0
        return f"v{last + 1:06d}"

    def _discard_staging(self, staging: pathlib.Path) -> None:
        delete_hook = getattr(self.backend, "delete", None)
        if delete_hook is not None:
            try:
                delete_hook(staging)
            except OSError:
                pass
        shutil.rmtree(staging, ignore_errors=True)

    def _release_blob(self, name: str, version_dir: pathlib.Path) -> None:
        """Let the owning backend drop per-version resources before the
        directory goes away (memory backend: evict the resident blob)."""
        storage = _storage_block_of(version_dir)
        if storage is None:
            return
        try:
            self._reader_for(storage).delete(version_dir)
        except (OSError, ValueError):
            pass  # accounting cleanup must never block a prune/delete

    def _sample_dir(self, name: str) -> pathlib.Path:
        _validate_name(name)
        path = self.root / name
        if not path.is_dir():
            raise KeyError(
                f"no stored sample {name!r}; "
                f"available: {', '.join(self.names()) or '-'}"
            )
        return path


# ----------------------------------------------------------------------
# per-column metadata helpers
# ----------------------------------------------------------------------
def derive_columns_block(
    lineage: Dict, stats: Optional[StrataStatistics] = None
) -> Dict:
    """The canonical lineage-to-tracked-columns derivation.

    Tracked columns come from the lineage (``value_columns``, or the
    legacy single ``value_column``), falling back to the persisted
    statistics keys for metas that predate column lineage. The primary
    column defaults to the first tracked one and is moved to the front
    of ``tracked``. This is the single implementation of the fallback
    chain — the store's meta ``columns`` block and the maintainer's
    tracked set both come from here, so they cannot disagree.
    """
    tracked = list(dict.fromkeys(lineage.get("value_columns") or []))
    if not tracked:
        single = lineage.get("value_column")
        if single:
            tracked = [single]
    if not tracked and stats is not None:
        tracked = list(stats.columns)
    primary = lineage.get("primary_column")
    if not primary or primary not in tracked:
        primary = tracked[0] if tracked else None
    if primary and tracked[0] != primary:
        tracked.remove(primary)
        tracked.insert(0, primary)
    return {"tracked": tracked, "primary": primary}


def _columns_block_of(meta: Dict) -> Dict:
    """A meta's ``columns`` block, derived for pre-format-3 metas."""
    block = meta.get("columns")
    if isinstance(block, dict) and block.get("tracked"):
        return {
            "tracked": list(block.get("tracked") or []),
            "primary": block.get("primary"),
        }
    tracked = list((meta.get("statistics") or {}).keys())
    lineage = dict(meta.get("lineage") or {})
    derived = derive_columns_block(lineage)
    if not derived["tracked"]:
        derived = {
            "tracked": tracked,
            "primary": tracked[0] if tracked else None,
        }
    return derived


def _column_stat_summaries(meta: Dict) -> Dict:
    """Per-column moment summaries from a meta's statistics block."""
    out: Dict = {}
    for column, cs in (meta.get("statistics") or {}).items():
        try:
            stats = ColumnStats(
                count=np.asarray(cs["count"], dtype=np.float64),
                total=np.asarray(cs["total"], dtype=np.float64),
                total_sq=np.asarray(cs["total_sq"], dtype=np.float64),
            )
        except (KeyError, TypeError, ValueError):
            continue  # torn statistics block: skip the column
        out[column] = summarize_column_stats(stats)
    return out


# ----------------------------------------------------------------------
# directory/version helpers
# ----------------------------------------------------------------------
def _validate_name(name: str) -> None:
    if (
        not name
        or name != name.strip()
        or any(sep in name for sep in ("/", "\\", os.sep))
        or name.startswith(".")
    ):
        raise ValueError(f"invalid sample name {name!r}")


def _list_versions(sample_dir: pathlib.Path) -> List[str]:
    if not sample_dir.is_dir():
        return []
    return sorted(
        p.name
        for p in sample_dir.iterdir()
        if p.is_dir() and p.name.startswith("v") and p.name[1:].isdigit()
    )


def _storage_block_of(version_dir: pathlib.Path) -> Optional[Dict]:
    """The ``storage`` block of a version directory, inferred for
    legacy versions; None when the directory is incomplete (meta
    missing or unparsable, or no rows blob) — such a version must not
    be adopted into the manifest, since it can never be loaded."""
    try:
        meta = json.loads((version_dir / _META_FILE).read_text())
    except (OSError, ValueError):
        return None
    storage = meta.get("storage")
    if storage is None:
        return infer_storage(version_dir)  # legacy meta: probe backends
    if not (version_dir / storage.get("rows_file", "rows.npz")).is_file():
        return None
    column_files = storage.get("column_files")
    if isinstance(column_files, dict):
        # Multi-file formats (mmap): every recorded column file must be
        # present, or the version is torn and must not be adopted.
        for fname in column_files.values():
            if not (version_dir / fname).is_file():
                return None
    return storage


def _read_current(sample_dir: pathlib.Path) -> Optional[str]:
    pointer = sample_dir / _CURRENT_FILE
    try:
        version = pointer.read_text().strip()
    except FileNotFoundError:
        versions = _list_versions(sample_dir)
        return versions[-1] if versions else None
    return version or None


def _swap_current(sample_dir: pathlib.Path, version: str) -> None:
    tmp = sample_dir / f".{_CURRENT_FILE}.tmp"
    tmp.write_text(version + "\n")
    os.replace(tmp, sample_dir / _CURRENT_FILE)


# ----------------------------------------------------------------------
# key-tuple (de)serialization — JSON with type tags so group keys
# round-trip exactly (int vs float vs str vs bool vs null)
# ----------------------------------------------------------------------
def _encode_key(key) -> list:
    return [_encode_value(v) for v in key]


def _encode_value(value) -> list:
    if isinstance(value, np.generic):
        value = value.item()
    if value is None:
        return ["n", None]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    return ["s", str(value)]


def _decode_value(tagged) -> object:
    tag, value = tagged
    if tag == "n":
        return None
    if tag == "b":
        return bool(value)
    if tag == "i":
        return int(value)
    if tag == "f":
        return float(value)
    if tag == "s":
        return str(value)
    raise ValueError(f"unknown key tag {tag!r}")


def _decode_key(tagged_key) -> tuple:
    return tuple(_decode_value(t) for t in tagged_key)
