"""Persistent, versioned sample store.

A :class:`SampleStore` keeps materialized
:class:`~repro.core.sample.StratifiedSample` objects on disk, each under
its own name with an append-only sequence of immutable versions::

    root/
      <name>/
        CURRENT          # one line: the live version id, e.g. "v000003"
        v000001/
          rows.npz       # the sample table (dtypes + categories intact)
          meta.json      # allocation, statistics, lineage, provenance
        v000002/
          ...

Writes are atomic at two levels: a new version is assembled in a hidden
staging directory and renamed into place with ``os.replace``, and the
``CURRENT`` pointer is swapped the same way — a reader either sees the
old version or the new one, never a half-written directory. Readers
never take locks; concurrent writers within one process are serialized
by an internal mutex (cross-process write coordination is a ROADMAP
item).

Besides the sample itself, a version persists the allocation's pass-1
per-stratum statistics (when the sampler kept them) so the maintenance
pipeline can resume the streaming CVOPT exactly where the last build
left off, plus a free-form ``lineage`` dict tracking refresh history
and staleness.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.sample import Allocation, StratifiedSample
from ..engine.statistics import ColumnStats, StrataStatistics
from ..engine.table import Table

__all__ = ["SampleStore", "StoredSample", "StoreEntryStats"]

_FORMAT_VERSION = 1
_CURRENT_FILE = "CURRENT"
_ROWS_FILE = "rows.npz"
_META_FILE = "meta.json"


@dataclass
class StoredSample:
    """One loaded version: the sample plus its warehouse metadata."""

    name: str
    version: str
    sample: StratifiedSample
    table_name: Optional[str] = None
    lineage: Dict = field(default_factory=dict)
    extra: Dict = field(default_factory=dict)
    path: Optional[pathlib.Path] = None

    @property
    def statistics(self) -> Optional[StrataStatistics]:
        return self.sample.allocation.stats


@dataclass
class StoreEntryStats:
    """Size/version accounting for one stored sample."""

    name: str
    current_version: Optional[str]
    num_versions: int
    rows: int
    strata: int
    bytes_on_disk: int
    method: str
    by: tuple
    lineage: Dict = field(default_factory=dict)


class SampleStore:
    """Directory-backed store of named, versioned stratified samples."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_lock = threading.Lock()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put(
        self,
        name: str,
        sample: StratifiedSample,
        table_name: Optional[str] = None,
        lineage: Optional[Dict] = None,
        extra: Optional[Dict] = None,
    ) -> str:
        """Write ``sample`` as the next version of ``name``; returns the
        new version id. The version becomes visible atomically."""
        _validate_name(name)
        with self._write_lock:
            sample_dir = self.root / name
            sample_dir.mkdir(parents=True, exist_ok=True)
            version = _next_version(sample_dir)
            staging = sample_dir / f".staging-{version}"
            if staging.exists():
                shutil.rmtree(staging)
            staging.mkdir()
            try:
                sample.table.save(staging / _ROWS_FILE)
                meta = self._encode_meta(
                    name, version, sample, table_name, lineage, extra
                )
                (staging / _META_FILE).write_text(json.dumps(meta, indent=2))
                os.replace(staging, sample_dir / version)
            except BaseException:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            _swap_current(sample_dir, version)
        return version

    def delete(self, name: str) -> None:
        """Remove a sample and all its versions."""
        path = self._sample_dir(name)
        shutil.rmtree(path)

    def prune(self, name: str, keep: int = 2) -> List[str]:
        """Drop all but the newest ``keep`` versions; returns the ids
        removed. The current version is always kept."""
        if keep < 1:
            raise ValueError("keep must be >= 1")
        sample_dir = self._sample_dir(name)
        with self._write_lock:
            versions = _list_versions(sample_dir)
            current = _read_current(sample_dir)
            doomed = [
                v
                for v in versions[:-keep]
                if v != current
            ]
            for version in doomed:
                shutil.rmtree(sample_dir / version, ignore_errors=True)
        return doomed

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Sorted names of every sample with at least one version."""
        if not self.root.exists():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and _list_versions(p)
        )

    def __contains__(self, name: str) -> bool:
        """Whether ``name`` exists with at least one version (never
        raises, even for syntactically invalid names)."""
        try:
            sample_dir = self._sample_dir(name)
        except (KeyError, ValueError):
            return False
        return bool(_list_versions(sample_dir))

    def versions(self, name: str) -> List[str]:
        """All version ids of ``name``, oldest first; raises
        :class:`KeyError` for unknown samples."""
        return _list_versions(self._sample_dir(name))

    def current_version(self, name: str) -> Optional[str]:
        """The live version id of ``name`` (None when the pointer is
        missing and no versions exist); raises :class:`KeyError` for
        unknown samples."""
        return _read_current(self._sample_dir(name))

    def get(self, name: str, version: Optional[str] = None) -> StoredSample:
        """Load ``name`` at ``version`` (default: the current one)."""
        sample_dir = self._sample_dir(name)
        if version is None:
            version = _read_current(sample_dir)
            if version is None:
                raise KeyError(f"sample {name!r} has no current version")
        version_dir = sample_dir / version
        if not version_dir.is_dir():
            raise KeyError(
                f"sample {name!r} has no version {version!r}; "
                f"available: {', '.join(_list_versions(sample_dir))}"
            )
        meta = json.loads((version_dir / _META_FILE).read_text())
        table = Table.load(version_dir / _ROWS_FILE)
        sample = self._decode_sample(table, meta)
        return StoredSample(
            name=name,
            version=version,
            sample=sample,
            table_name=meta.get("table_name"),
            lineage=meta.get("lineage") or {},
            extra=meta.get("extra") or {},
            path=version_dir,
        )

    def stats(self) -> List[StoreEntryStats]:
        """Per-sample accounting over the whole store.

        Safe against concurrent writers: a sample pruned or deleted
        mid-walk is skipped rather than raising (the snapshot simply
        reflects one side of the race).
        """
        out = []
        for name in self.names():
            try:
                entry = self._entry_stats(name)
            except FileNotFoundError:
                continue  # pruned/deleted underneath us
            out.append(entry)
        return out

    def _entry_stats(self, name: str) -> StoreEntryStats:
        sample_dir = self.root / name
        versions = _list_versions(sample_dir)
        current = _read_current(sample_dir)
        rows = strata = 0
        method = ""
        by: tuple = ()
        lineage: Dict = {}
        if current is not None:
            meta = json.loads(
                (sample_dir / current / _META_FILE).read_text()
            )
            rows = int(meta.get("sample_rows", 0))
            strata = len(meta["allocation"]["keys"])
            method = meta.get("method", "")
            by = tuple(meta["allocation"]["by"])
            lineage = meta.get("lineage") or {}
        nbytes = 0
        for f in sample_dir.rglob("*"):
            try:
                if f.is_file():
                    nbytes += f.stat().st_size
            except FileNotFoundError:
                continue  # file pruned between listing and stat
        return StoreEntryStats(
            name=name,
            current_version=current,
            num_versions=len(versions),
            rows=rows,
            strata=strata,
            bytes_on_disk=nbytes,
            method=method,
            by=by,
            lineage=lineage,
        )

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _encode_meta(
        self, name, version, sample, table_name, lineage, extra
    ) -> Dict:
        allocation = sample.allocation
        meta = {
            "format": _FORMAT_VERSION,
            "name": name,
            "version": version,
            "method": sample.method,
            "budget": int(sample.budget),
            "source_rows": int(sample.source_rows),
            "sample_rows": int(sample.num_rows),
            "table_name": table_name,
            "allocation": {
                "by": list(allocation.by),
                "keys": [_encode_key(k) for k in allocation.keys],
                "populations": [int(x) for x in allocation.populations],
                "sizes": [int(x) for x in allocation.sizes],
            },
            "lineage": dict(lineage or {}),
            "extra": dict(extra or {}),
        }
        if allocation.scores is not None:
            meta["allocation"]["scores"] = [
                float(x) for x in allocation.scores
            ]
        if allocation.stats is not None:
            meta["statistics"] = {
                column: {
                    "count": [float(x) for x in cs.count],
                    "total": [float(x) for x in cs.total],
                    "total_sq": [float(x) for x in cs.total_sq],
                }
                for column, cs in allocation.stats.columns.items()
            }
        return meta

    def _decode_sample(self, table: Table, meta: Dict) -> StratifiedSample:
        alloc_meta = meta["allocation"]
        keys = [_decode_key(k) for k in alloc_meta["keys"]]
        populations = np.asarray(alloc_meta["populations"], dtype=np.int64)
        stats = None
        if meta.get("statistics"):
            stats = StrataStatistics(
                by=tuple(alloc_meta["by"]),
                keys=keys,
                sizes=populations,
            )
            for column, cs in meta["statistics"].items():
                stats.columns[column] = ColumnStats(
                    count=np.asarray(cs["count"], dtype=np.float64),
                    total=np.asarray(cs["total"], dtype=np.float64),
                    total_sq=np.asarray(cs["total_sq"], dtype=np.float64),
                )
        scores = alloc_meta.get("scores")
        allocation = Allocation(
            by=tuple(alloc_meta["by"]),
            keys=keys,
            populations=populations,
            sizes=np.asarray(alloc_meta["sizes"], dtype=np.int64),
            scores=(
                np.asarray(scores, dtype=np.float64)
                if scores is not None
                else None
            ),
            stats=stats,
        )
        return StratifiedSample(
            table=table,
            allocation=allocation,
            method=meta["method"],
            source_rows=int(meta["source_rows"]),
            budget=int(meta["budget"]),
        )

    def _sample_dir(self, name: str) -> pathlib.Path:
        _validate_name(name)
        path = self.root / name
        if not path.is_dir():
            raise KeyError(
                f"no stored sample {name!r}; "
                f"available: {', '.join(self.names()) or '-'}"
            )
        return path


# ----------------------------------------------------------------------
# directory/version helpers
# ----------------------------------------------------------------------
def _validate_name(name: str) -> None:
    if (
        not name
        or name != name.strip()
        or any(sep in name for sep in ("/", "\\", os.sep))
        or name.startswith(".")
    ):
        raise ValueError(f"invalid sample name {name!r}")


def _list_versions(sample_dir: pathlib.Path) -> List[str]:
    if not sample_dir.is_dir():
        return []
    return sorted(
        p.name
        for p in sample_dir.iterdir()
        if p.is_dir() and p.name.startswith("v") and p.name[1:].isdigit()
    )


def _next_version(sample_dir: pathlib.Path) -> str:
    versions = _list_versions(sample_dir)
    last = int(versions[-1][1:]) if versions else 0
    return f"v{last + 1:06d}"


def _read_current(sample_dir: pathlib.Path) -> Optional[str]:
    pointer = sample_dir / _CURRENT_FILE
    try:
        version = pointer.read_text().strip()
    except FileNotFoundError:
        versions = _list_versions(sample_dir)
        return versions[-1] if versions else None
    return version or None


def _swap_current(sample_dir: pathlib.Path, version: str) -> None:
    tmp = sample_dir / f".{_CURRENT_FILE}.tmp"
    tmp.write_text(version + "\n")
    os.replace(tmp, sample_dir / _CURRENT_FILE)


# ----------------------------------------------------------------------
# key-tuple (de)serialization — JSON with type tags so group keys
# round-trip exactly (int vs float vs str vs bool vs null)
# ----------------------------------------------------------------------
def _encode_key(key) -> list:
    return [_encode_value(v) for v in key]


def _encode_value(value) -> list:
    if isinstance(value, np.generic):
        value = value.item()
    if value is None:
        return ["n", None]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    return ["s", str(value)]


def _decode_value(tagged) -> object:
    tag, value = tagged
    if tag == "n":
        return None
    if tag == "b":
        return bool(value)
    if tag == "i":
        return int(value)
    if tag == "f":
        return float(value)
    if tag == "s":
        return str(value)
    raise ValueError(f"unknown key tag {tag!r}")


def _decode_key(tagged_key) -> tuple:
    return tuple(_decode_value(t) for t in tagged_key)
