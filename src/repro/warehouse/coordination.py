"""Cross-process write coordination for the sample store.

Two primitives, both plain files so any number of processes (the HTTP
front's watch mode, the standalone ``warehouse daemon``, ad-hoc CLI
builds) can share one store directory without a coordination service:

:class:`FileLock`
    An advisory lock: ``O_CREAT | O_EXCL`` creation of a lock file
    whose body records the holder (pid, host, timestamp). Waiters poll;
    a lock whose holder is a dead process on the same host is broken
    immediately, and one whose holder cannot be probed (other host,
    unreadable body) is broken once the file ages past
    ``stale_timeout`` seconds. A verified-alive holder is never
    broken — waiters time out instead. Breaking is best-effort (two
    breakers can race on a truly dead lock), which is acceptable for an
    advisory protocol: the store's writes stay safe regardless because
    versions are immutable and commits are atomic appends/renames.

:class:`ManifestLog`
    An append-only log of JSON records, one per line, fsync'd on every
    append. A record is *committed* when its full line (terminated by
    ``\\n``) is durable; replay ignores a torn trailing line, so a
    crash mid-append can never corrupt the history — at worst the last
    write is simply absent and the version directory it described is
    invisible until :meth:`SampleStore.rebuild_manifest` adopts it.
    Readers tail the log incrementally: :meth:`replay` returns the
    records past a byte offset plus the new offset, so a polling reader
    pays only for what changed.

See ``docs/STORAGE.md`` for the record schema and the lock protocol,
and ``docs/OPERATIONS.md`` for the operational runbook.
"""

from __future__ import annotations

import errno
import json
import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["FileLock", "LockTimeout", "ManifestLog", "ManifestRecord"]


class LockTimeout(OSError):
    """Could not acquire an advisory lock within the timeout."""


class FileLock:
    """Advisory cross-process lock file with stale-lock detection.

    Usage::

        with FileLock(store_root / "name" / ".lock"):
            ...  # exclusive writer section

    Parameters
    ----------
    path:
        Lock file location. The parent directory must exist.
    timeout:
        Seconds to wait for the lock before raising :class:`LockTimeout`.
    stale_timeout:
        Age (by mtime) beyond which a lock whose holder *cannot be
        probed* (other host, unreadable body) is presumed abandoned
        and broken. Same-host holders are probed with
        ``os.kill(pid, 0)`` instead: dead ones are broken immediately,
        live ones are never broken regardless of age.
    poll_interval:
        Seconds between acquisition attempts while waiting.
    """

    def __init__(
        self,
        path,
        timeout: float = 10.0,
        stale_timeout: float = 30.0,
        poll_interval: float = 0.02,
    ) -> None:
        self.path = pathlib.Path(path)
        self.timeout = float(timeout)
        self.stale_timeout = float(stale_timeout)
        self.poll_interval = float(poll_interval)
        self._held = False

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_create():
                self._held = True
                return
            if self._break_if_stale():
                continue  # freed it; race others for the create
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within "
                    f"{self.timeout:.1f}s (holder: {self._describe()})"
                )
            time.sleep(self.poll_interval)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        # Only remove the file if it is still *our* lock: a waiter may
        # have aged us out (e.g. cross-host, no liveness probe) and
        # created its own — unlinking that would let a third writer in.
        holder = self._holder()
        if holder is not None and (
            holder.get("pid") != os.getpid()
            or holder.get("host") != socket.gethostname()
        ):
            return  # broken and re-acquired by someone else
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass  # broken by someone who presumed us dead

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _try_create(self) -> bool:
        body = json.dumps(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "created": time.time(),
            }
        ).encode("utf-8")
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, body)
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def _holder(self) -> Optional[Dict]:
        try:
            return json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None

    def _describe(self) -> str:
        holder = self._holder()
        if not holder:
            return "unknown"
        return f"pid {holder.get('pid')}@{holder.get('host')}"

    def _break_if_stale(self) -> bool:
        """Remove an abandoned lock; True when the caller should retry
        immediately."""
        holder = self._holder()
        if (
            holder
            and holder.get("host") == socket.gethostname()
            and isinstance(holder.get("pid"), int)
        ):
            # Same host: the liveness probe is authoritative. A
            # verified-alive holder is never broken, however long it
            # has held the lock (waiters time out instead).
            stale = not _pid_alive(holder["pid"])
        else:
            # Other host or unreadable body: liveness is unknowable,
            # fall back to the age heuristic.
            try:
                age = time.time() - self.path.stat().st_mtime
            except FileNotFoundError:
                return True  # released while we looked
            stale = age > self.stale_timeout
        if not stale:
            return False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        return True


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError as exc:  # pragma: no cover - exotic platforms
        return exc.errno != errno.ESRCH
    return True


# ----------------------------------------------------------------------
# manifest log
# ----------------------------------------------------------------------
@dataclass
class ManifestRecord:
    """One committed manifest entry."""

    op: str  # "put" | "prune" | "delete"
    name: str
    version: Optional[str] = None
    versions: Optional[List[str]] = None  # prune: ids removed
    storage: Optional[Dict] = None  # put: backend/format/rows_file
    ts: float = 0.0
    recovered: bool = False

    def to_json(self) -> str:
        payload = {"op": self.op, "name": self.name, "ts": self.ts}
        if self.version is not None:
            payload["version"] = self.version
        if self.versions is not None:
            payload["versions"] = list(self.versions)
        if self.storage is not None:
            payload["storage"] = dict(self.storage)
        if self.recovered:
            payload["recovered"] = True
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict) -> "ManifestRecord":
        return cls(
            op=str(payload.get("op", "")),
            name=str(payload.get("name", "")),
            version=payload.get("version"),
            versions=payload.get("versions"),
            storage=payload.get("storage"),
            ts=float(payload.get("ts", 0.0)),
            recovered=bool(payload.get("recovered", False)),
        )


class ManifestLog:
    """Append-only, fsync'd JSON-lines log of store mutations.

    Appends are a single ``write`` on an ``O_APPEND`` descriptor
    followed by ``fsync`` — on POSIX filesystems concurrent appenders
    in different processes cannot interleave bytes for records of this
    size, so every committed line is one whole record. Within a process
    appends are additionally serialized by a mutex.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self._append_mutex = threading.Lock()

    def exists(self) -> bool:
        return self.path.exists()

    def size(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: ManifestRecord) -> None:
        """Durably commit one record (atomic: all-or-nothing on crash)."""
        if not record.ts:
            record.ts = time.time()
        line = (record.to_json() + "\n").encode("utf-8")
        with self._append_mutex:
            fd = os.open(
                self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def replay(
        self, since_offset: int = 0
    ) -> Tuple[List[ManifestRecord], int, int]:
        """Records committed past ``since_offset``.

        Returns ``(records, new_offset, skipped)``: the offset only
        advances past *complete* lines, so a torn trailing write is
        re-examined on the next call (and adopted once its newline
        lands). ``skipped`` counts complete-but-unparsable lines —
        zero on a healthy log.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(since_offset)
                data = fh.read()
        except FileNotFoundError:
            return [], 0, 0
        records: List[ManifestRecord] = []
        skipped = 0
        offset = since_offset
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn trailing append: not committed yet
            offset += len(line)
            text = line.strip()
            if not text:
                continue
            try:
                payload = json.loads(text.decode("utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("record is not an object")
                records.append(ManifestRecord.from_dict(payload))
            except (ValueError, UnicodeDecodeError):
                skipped += 1
        return records, offset, skipped
