"""Per-query accuracy contracts.

Sampling-backed AQP systems are judged by the error guarantees they
return *alongside* answers, not by the rows alone. An
:class:`AccuracyContract` is the machine-readable block the warehouse
attaches to every answer: which sample (and which immutable version)
produced it, the a-priori per-group CV prediction for that sample and
query, how stale the sample is relative to its base table, and whether
the router fell back to exact execution — plus the caller's constraints
(``max_cv`` / ``max_staleness``) and whether they were satisfied.

Callers state constraints; the service either proves them met, silently
falls back to exact execution (which trivially satisfies any accuracy
constraint), or raises :class:`AccuracyContractViolation` — the HTTP
layer maps that to a 412 Precondition Failed.

The CV figures are the a-priori predictions of
:mod:`repro.aqp.planning` (see ``docs/ACCURACY.md`` for how they relate
to the paper's guarantees); they are estimates computed from the
sample's persisted per-stratum moments of the column(s) the query
actually aggregates (``cv_columns`` names them — that is what the
contract *covers*), not post-hoc measured errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AccuracyContract",
    "AccuracyContractViolation",
    "ContractedResult",
    "build_contract",
]

#: Per-group CV detail is elided from ``to_dict`` beyond this many
#: strata so a fine-grained sample cannot bloat every HTTP response.
MAX_GROUP_DETAIL = 200


@dataclass(frozen=True)
class AccuracyContract:
    """Accuracy guarantees attached to one answered query.

    Immutable snapshot taken under the same read lock as the query
    execution, so ``sample_version`` is exactly the version whose rows
    produced the answer even while writers hot-swap versions.
    """

    #: ``"approximate"`` or ``"exact"`` — how the answer was computed.
    executed: str
    #: Sample that answered (None for exact execution).
    sample_name: Optional[str] = None
    #: Immutable store version of that sample (None for exact).
    sample_version: Optional[str] = None
    #: Mean a-priori estimate CV over the sample's strata (None: exact).
    predicted_cv: Optional[float] = None
    #: Worst per-stratum predicted CV (None for exact execution).
    max_group_cv: Optional[float] = None
    #: Aggregate columns whose persisted moments the CV prediction was
    #: computed from — the columns this contract *covers*. Empty for
    #: COUNT(*)-style queries (prediction from sampling fractions
    #: alone), None for exact execution.
    cv_columns: Optional[Tuple[str, ...]] = None
    #: Per-stratum predicted CVs, aligned with ``group_keys``.
    group_cvs: Optional[Tuple[float, ...]] = None
    #: Stratification key tuples, aligned with ``group_cvs``.
    group_keys: Optional[Tuple[Tuple, ...]] = None
    #: Rows ingested since the last full build / base rows (0.0 fresh).
    #: For a windowed sample this is *event-time*: how many window
    #: widths the newest covered event lags behind now.
    staleness: float = 0.0
    #: Half-open event-time range ``[start, end)`` the answering sample
    #: actually covers (None for un-windowed samples and exact
    #: execution). Sits next to ``staleness``: staleness says how far
    #: behind the data is, ``window_bounds`` says which slice of time
    #: the answer speaks for.
    window_bounds: Optional[Tuple[int, int]] = None
    #: Achieved / optimal predicted-CV objective ratio (1.0 optimal).
    drift: float = 1.0
    #: Maintenance flagged this sample for a full rebuild.
    needs_rebuild: bool = False
    #: True when the answer is exact *although* approximation was
    #: allowed — the router found no usable sample, or the caller's
    #: constraints forced the fallback.
    fallback_exact: bool = False
    #: Router / fallback explanation, always present.
    reason: str = ""
    #: Echo of the caller's constraints, e.g. ``{"max_cv": 0.05}``.
    constraints: Dict[str, float] = field(default_factory=dict)
    #: Whether every stated constraint holds for this answer.
    satisfied: bool = True

    def to_dict(self, max_groups: int = MAX_GROUP_DETAIL) -> Dict:
        """JSON-ready representation of the contract.

        Per-group detail (``group_cvs`` keyed by the stratification
        keys) is included only up to ``max_groups`` strata; the scalar
        summary fields are always present.
        """
        out: Dict = {
            "executed": self.executed,
            "sample_name": self.sample_name,
            "sample_version": self.sample_version,
            "predicted_cv": self.predicted_cv,
            "max_group_cv": self.max_group_cv,
            "cv_columns": (
                list(self.cv_columns)
                if self.cv_columns is not None
                else None
            ),
            "staleness": self.staleness,
            "window_bounds": (
                list(self.window_bounds)
                if self.window_bounds is not None
                else None
            ),
            "drift": self.drift,
            "needs_rebuild": self.needs_rebuild,
            "fallback_exact": self.fallback_exact,
            "reason": self.reason,
            "constraints": dict(self.constraints),
            "satisfied": self.satisfied,
        }
        if (
            self.group_cvs is not None
            and self.group_keys is not None
            and len(self.group_cvs) <= max_groups
        ):
            out["group_cvs"] = {
                "|".join(str(part) for part in key): cv
                for key, cv in zip(self.group_keys, self.group_cvs)
            }
        return out


@dataclass
class ContractedResult:
    """An answered query bundled with its accuracy contract."""

    result: "AQPResult"  # noqa: F821 — repro.aqp.session.AQPResult
    contract: AccuracyContract

    @property
    def table(self):
        """The answer table (same object as ``result.table``)."""
        return self.result.table


def build_contract(
    route,
    mode: str,
    max_cv: Optional[float],
    max_staleness: Optional[float],
    *,
    sample_version: Optional[str],
    lineage: Dict,
    staleness: float,
    group_keys: Optional[Tuple[Tuple, ...]],
    window_bounds: Optional[Tuple[int, int]] = None,
):
    """Contract + violation list for one routing decision.

    The single implementation behind both the in-process
    :class:`~repro.warehouse.service.WarehouseService` and the sharded
    scatter-gather front — the two serving paths must emit contracts of
    identical shape from identical inputs, so the derivation lives
    here. ``route`` is an :class:`~repro.aqp.session.RouteDecision`;
    ``sample_version``/``lineage``/``staleness``/``group_keys``
    describe the served sample (merged across shards when sharded) and
    are ignored for exact routes. Returns ``(contract, violations)``.
    """
    constraints: Dict[str, float] = {}
    if max_cv is not None:
        constraints["max_cv"] = float(max_cv)
    if max_staleness is not None:
        constraints["max_staleness"] = float(max_staleness)
    if not route.approximate:
        return (
            AccuracyContract(
                executed="exact",
                # Exact by the router's hand, not the caller's, is a
                # fallback worth flagging.
                fallback_exact=mode != "exact",
                reason=route.reason,
                constraints=constraints,
                satisfied=True,
            ),
            [],
        )
    name = route.sample_name
    violations = []
    cv_bound = route.max_group_cv
    if max_cv is not None and cv_bound is not None and cv_bound > max_cv:
        covered = (
            f" on column(s) {', '.join(route.cv_columns)}"
            if route.cv_columns
            else ""
        )
        violations.append(
            f"predicted per-group CV {cv_bound:.4f} of sample "
            f"{name!r}{covered} exceeds max_cv {max_cv:.4f}"
        )
    if max_staleness is not None and staleness > max_staleness:
        violations.append(
            f"staleness {staleness:.4f} of sample {name!r} exceeds "
            f"max_staleness {max_staleness:.4f}"
        )
    contract = AccuracyContract(
        executed="approximate",
        sample_name=name,
        sample_version=sample_version,
        predicted_cv=route.predicted_cv,
        max_group_cv=cv_bound,
        cv_columns=route.cv_columns,
        group_cvs=route.group_cvs,
        group_keys=group_keys,
        staleness=staleness,
        window_bounds=(
            (int(window_bounds[0]), int(window_bounds[1]))
            if window_bounds is not None
            else None
        ),
        drift=float(lineage.get("drift", 1.0)),
        needs_rebuild=bool(lineage.get("needs_rebuild", False)),
        fallback_exact=False,
        reason=route.reason,
        constraints=constraints,
        satisfied=not violations,
    )
    return contract, violations


class AccuracyContractViolation(Exception):
    """No answer satisfying the caller's accuracy constraints exists.

    Raised when constraints are violated and the caller asked for
    rejection rather than exact fallback (``on_violation="reject"``, or
    ``mode="approx"`` where exact execution is off the table). Carries
    the offending :class:`AccuracyContract` and the individual
    violation messages so servers can return a structured 412.
    """

    def __init__(self, violations: List[str], contract: AccuracyContract):
        self.violations = list(violations)
        self.contract = contract
        super().__init__("; ".join(self.violations))
