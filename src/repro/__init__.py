"""CVOPT — random sampling for group-by queries.

Reproduction of Nguyen, Shih, Parvathaneni, Xu, Srivastava, Tirthapura:
*Random Sampling for Group-By Queries* (ICDE 2020, arXiv:1909.02629).

Quickstart::

    from repro import CVOptSampler, generate_openaq

    table = generate_openaq(num_rows=100_000)
    sql = '''SELECT country, parameter, AVG(value) average
             FROM OpenAQ GROUP BY country, parameter'''
    sampler = CVOptSampler.from_sql(sql)
    sample = sampler.sample_rate(table, rate=0.01, seed=0)
    approx = sample.answer(sql, table_name="OpenAQ")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results of every table and figure.
"""

from .core import (
    AggregateSpec,
    Allocation,
    CVOptInfSampler,
    CVOptSampler,
    GroupByQuerySpec,
    StratifiedSample,
    StratifiedSampler,
    specs_from_sql,
)
from .baselines import (
    CongressSampler,
    NeymanSampler,
    RLSampler,
    SampleSeekSampler,
    SenateSampler,
    UniformSampler,
    make_samplers,
)
from .aqp import (
    AQPSession,
    QueryTask,
    SampleCatalog,
    compare_results,
    estimate_groups,
    ground_truth,
    run_experiment,
)
from .datasets import (
    generate_bikes,
    generate_openaq,
    make_grouped_table,
    student_table,
    student_workload,
)
from .engine import Table, execute_sql
from .queries import PAPER_QUERIES, get_query, task_for
from .workload import Workload, WorkloadQuery, specs_from_workload
from .warehouse import (
    AccuracyContract,
    AccuracyContractViolation,
    SampleMaintainer,
    SampleStore,
    WarehouseService,
    advise,
)
from .serve import (
    AsyncWarehouseService,
    MaintenanceDaemon,
    WarehouseHTTPServer,
)

__version__ = "1.0.0"

__all__ = [
    "CVOptSampler",
    "CVOptInfSampler",
    "GroupByQuerySpec",
    "AggregateSpec",
    "Allocation",
    "StratifiedSample",
    "StratifiedSampler",
    "specs_from_sql",
    "UniformSampler",
    "SenateSampler",
    "CongressSampler",
    "RLSampler",
    "SampleSeekSampler",
    "NeymanSampler",
    "make_samplers",
    "SampleCatalog",
    "AQPSession",
    "QueryTask",
    "compare_results",
    "estimate_groups",
    "ground_truth",
    "run_experiment",
    "generate_openaq",
    "generate_bikes",
    "student_table",
    "student_workload",
    "make_grouped_table",
    "Table",
    "execute_sql",
    "PAPER_QUERIES",
    "get_query",
    "task_for",
    "Workload",
    "WorkloadQuery",
    "specs_from_workload",
    "SampleStore",
    "SampleMaintainer",
    "WarehouseService",
    "advise",
    "AccuracyContract",
    "AccuracyContractViolation",
    "AsyncWarehouseService",
    "WarehouseHTTPServer",
    "MaintenanceDaemon",
    "__version__",
]
