"""Shard worker: one process, one shard, one ``WarehouseService``.

A sharded warehouse is a front plus N workers. Each worker owns
exactly one ``shard-NN/`` sub-store of a
:class:`~repro.warehouse.sharding.ShardedSampleStore` and wraps it in
a perfectly ordinary :class:`~repro.warehouse.service.WarehouseService`
— the same hot-swap, locking and maintenance machinery the unsharded
deployment uses, applied to the shard's slice of every sample. On top
of that service sits a tiny request loop (:class:`ShardServer`) that
answers the scatter-gather protocol:

``partials``
    Parse + :func:`~repro.warehouse.partials.decompose` the shipped
    SQL locally, snapshot the named sample under the service's read
    lock, and return per-group ``(count, total, total_sq)`` moment
    blocks (:func:`~repro.warehouse.partials.compute_partials`). The
    worker never finalizes — aggregation finishes at the front, on the
    merged moments.
``refresh``
    Fold a pre-partitioned batch (only rows whose strata this shard
    owns) into the shard's stored sample via the streaming maintainer,
    then hot-swap the new version live. Escalation to a full rebuild
    is *not* done here — a shard sees only its strata, so rebuild
    decisions belong to the front, which pushes rebuilt pieces down
    through ``put``.
``sample_meta`` / ``stats`` / ``ping``
    Metadata for the front's merged routing view, per-shard store
    accounting, and liveness.

Workers register an empty placeholder for each sample's base-table
name: a shard intentionally has no base rows (exact execution happens
at the front, which holds the real tables), but the service requires a
registered table before it serves a sample.

Process plumbing: :func:`worker_main` is the child entry point
(``multiprocessing`` "spawn" context — no inherited locks/fds), fed by
a duplex :class:`~multiprocessing.connection.Connection`;
:class:`ProcessShardClient` is the front's per-shard handle, safe for
one request at a time (the front serializes per shard and fans out
*across* shards). :class:`InProcessShardClient` runs the same
``ShardServer`` without a process boundary — the protocol stays
byte-identical, which is what the equivalence property tests exercise.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from pathlib import Path
from threading import Lock
from typing import Dict, Optional

from ..engine.sql.parser import parse_query
from ..engine.table import Table
from ..obs import default_registry, default_tracer
from ..warehouse.partials import compute_partials, decompose
from ..warehouse.service import LRUCache, WarehouseService
from ..warehouse.sharding import ShardedSampleStore
from ..warehouse.store import SampleStore

__all__ = [
    "InProcessShardClient",
    "ProcessShardClient",
    "ShardServer",
    "ShardWorkerError",
    "worker_main",
]

_WORKER_OPS = default_registry().counter(
    "repro_worker_ops_total",
    "Shard-worker protocol requests handled, by op",
    ["op"],
)
_DECOMPOSE_CACHE = default_registry().counter(
    "repro_worker_decompose_cache_total",
    "Worker-side SQL decomposition cache lookups by result",
    ["result"],
)

#: Decomposition-cache capacity: mirrors the front's shape cache in
#: spirit, sized for the distinct-SQL working set of a dashboard.
_DECOMPOSE_CACHE_SIZE = 128


class ShardWorkerError(Exception):
    """A shard worker reported a failure for one request.

    Carries the remote exception type name and traceback text so the
    front can log shard-side failures without unpickling arbitrary
    exception objects.
    """

    def __init__(self, message: str, remote_type: str = "",
                 remote_traceback: str = ""):
        super().__init__(message)
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


class ShardServer:
    """Request handler around one shard's :class:`WarehouseService`.

    ``store_root`` is the *sharded* store root; the server opens the
    ``shard-NN/`` sub-store for ``shard_index`` (each sub-store keeps
    its own manifest/lock protocol, so concurrent workers never step on
    each other). All handlers return plain picklable values.
    """

    def __init__(self, store_root, shard_index: int,
                 backend=None, cv_degradation_threshold: float = 1.5,
                 keep_versions: int = 4) -> None:
        self.shard_index = int(shard_index)
        root = Path(store_root)
        shard_root = (
            ShardedSampleStore(root).shard_root(self.shard_index)
            if ShardedSampleStore.is_sharded_root(root)
            else root
        )
        self.service = WarehouseService(
            SampleStore(shard_root, backend=backend),
            cv_degradation_threshold=cv_degradation_threshold,
            keep_versions=keep_versions,
            # Workers cache group codes per shard piece: the scope keeps
            # in-process workers — which share one process-wide cache —
            # from colliding on identical (sample, version) keys whose
            # rows differ per shard.
            cache_scope=f"shard-{self.shard_index:02d}",
        )
        self._placeholders: set = set()
        # SQL text -> (decomposed-or-None,): workers see the same few
        # query shapes over and over, so skip re-parse + re-decompose.
        # SQL-keyed and parse-pure, so no invalidation on hot-swaps.
        self._decompose_cache = LRUCache(_DECOMPOSE_CACHE_SIZE)
        self._adopt_all()

    # ------------------------------------------------------------------
    # adoption
    # ------------------------------------------------------------------
    def _adopt_all(self) -> None:
        """Serve every stored sample on this shard.

        The shard holds no base rows by design, so each sample's base
        table is registered as an empty placeholder — enough for the
        service to adopt the sample and for ``partials`` to snapshot
        it; exact execution never happens on a worker.

        With the mmap backend adoption is O(metadata) per sample: the
        tables come back lazy, ``sample_meta`` ships allocations
        without touching rows, and a ``partials`` call materializes
        only the columns its query needs (see
        :func:`repro.warehouse.partials.compute_partials`) as shared
        page-cache mappings — N workers on one host keep one physical
        copy of the hot columns instead of N private ones.
        """
        for name in self.service.store.names():
            try:
                stored = self.service.store.get(name)
            except KeyError:
                continue
            table_name = stored.table_name or ""
            if table_name and table_name not in self._placeholders:
                self.service.register_table(table_name, Table({}))
                self._placeholders.add(table_name)
            self.service.publish_stored(name, stored)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def handle(self, op: str, payload: Optional[Dict] = None) -> Dict:
        payload = payload or {}
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ShardWorkerError(f"unknown shard op {op!r}")
        _WORKER_OPS.inc(op=op)
        return handler(**payload)

    def _op_ping(self) -> Dict:
        return {
            "ok": True,
            "shard": self.shard_index,
            "pid": os.getpid(),
            "epoch": self.service.epoch,
        }

    def _op_sample_meta(self) -> Dict:
        """Everything the front needs to build its merged routing view:
        per-sample allocation (keys, populations, sizes, per-column
        moments — exact, never split across shards), served version and
        lineage."""
        samples = {}
        for name in self.service.samples():
            sample, version, lineage = self.service.snapshot_sample(name)
            if sample is None:
                continue
            samples[name] = {
                "allocation": sample.allocation,
                "version": version,
                "lineage": lineage,
                # Window members carry their tumbling-window tag so the
                # front can rebuild its family registry and register
                # time-aware stand-ins.
                "window": lineage.get("window"),
                "method": sample.method,
                "rows": sample.num_rows,
                "source_rows": sample.source_rows,
                "budget": sample.budget,
            }
        stored_tables = {
            name: self.service.store.get(name).table_name
            for name in self.service.store.names()
        }
        return {
            "shard": self.shard_index,
            "samples": samples,
            "tables": stored_tables,
        }

    def _op_partials(
        self, sql: str, name: str, trace_id: Optional[str] = None
    ) -> Dict:
        """Per-group partial moments of ``sql`` over sample ``name``.

        The worker re-decomposes the SQL itself (the front already
        proved it decomposable before fanning out) so the wire carries
        only strings — no pickled expression trees to keep in sync; an
        LRU keyed by the SQL text skips the re-parse on repeats.
        ``trace_id`` (shipped in the payload by a tracing front) makes
        the worker record its span against the front's trace and return
        it in the response for grafting.
        """
        span = default_tracer().remote_span(
            trace_id, "shard.partials", shard=self.shard_index, sample=name
        )
        try:
            hit = self._decompose_cache.get(sql)
            if hit is not None:
                dq = hit[0]  # sentinel tuple: None is a valid cached value
                _DECOMPOSE_CACHE.inc(result="hit")
                span.set_tag("decompose_cache", "hit")
            else:
                dq = decompose(parse_query(sql))
                self._decompose_cache.put(sql, (dq,))
                _DECOMPOSE_CACHE.inc(result="miss")
                span.set_tag("decompose_cache", "miss")
            if dq is None:
                raise ShardWorkerError(
                    f"query is not decomposable on shard "
                    f"{self.shard_index}: {sql!r}"
                )
            sample, version, _ = self.service.snapshot_sample(name)
            if sample is None:
                raise ShardWorkerError(
                    f"sample {name!r} is not live on shard "
                    f"{self.shard_index}"
                )
            part = compute_partials(sample, dq)
            part.sample_version = version
        finally:
            span.finish()
        response = {"partials": part}
        if trace_id is not None:
            response["spans"] = [span.to_dict()]
        return response

    def _op_refresh(self, name: str, batch: Table, seed: int = 0,
                    columns=None) -> Dict:
        """Incremental refresh of this shard's slice with its
        pre-partitioned rows, then hot-swap. No ``full_table`` — a
        shard cannot rebuild from strata it does not own, so the
        report's ``needs_rebuild`` flag travels back to the front,
        which owns escalation."""
        report = self.service.maintainer.refresh(
            name, batch, seed=seed, columns=columns
        )
        stored = self.service.store.get(name, report.version)
        self.service.publish_stored(name, stored)
        return {"report": report}

    def _op_put(self, name: str, sample, table_name=None,
                lineage=None, extra=None) -> Dict:
        """Adopt a rebuilt shard piece pushed down by the front (the
        central-rebuild path) and swap it live."""
        version = self.service.store.put(
            name, sample, table_name=table_name, lineage=lineage,
            extra=extra,
        )
        stored = self.service.store.get(name, version)
        if table_name and table_name not in self._placeholders:
            self.service.register_table(table_name, Table({}))
            self._placeholders.add(table_name)
        self.service.publish_stored(name, stored)
        self.service.store.prune(
            name, keep=self.service.maintainer.keep_versions
        )
        return {"version": version}

    def _op_reload(self, name: str) -> Dict:
        """Re-read the store's current version (written out-of-band by
        another process) and swap it live."""
        stored = self.service.store.get(name)
        table_name = stored.table_name or ""
        if table_name and table_name not in self._placeholders:
            self.service.register_table(table_name, Table({}))
            self._placeholders.add(table_name)
        live = self.service.publish_stored(name, stored)
        return {"version": stored.version, "live": live}

    def _op_stats(self) -> Dict:
        stats = self.service.stats()
        stats["shard"] = self.shard_index
        stats["worker"] = {
            "pid": os.getpid(),
            "ops": _WORKER_OPS.snapshot(),
            "decompose_cache": self._decompose_cache.counters(),
        }
        return {"stats": stats}

    def _op_shutdown(self) -> Dict:
        return {"ok": True, "shutdown": True}


def worker_main(conn, store_root: str, shard_index: int,
                backend: Optional[str] = None,
                cv_degradation_threshold: float = 1.5,
                keep_versions: int = 4) -> None:
    """Child-process entry point: serve requests until ``shutdown``.

    Every request is ``(op, payload)``; every response is a dict, with
    failures wrapped as ``{"error": ..., "error_type": ...,
    "traceback": ...}`` so one bad query never kills the worker. EOF on
    the pipe (front died) is a clean exit.
    """
    from ..warehouse.backends import resolve_backend

    try:
        server = ShardServer(
            store_root, shard_index,
            backend=resolve_backend(backend) if backend else None,
            cv_degradation_threshold=cv_degradation_threshold,
            keep_versions=keep_versions,
        )
    except Exception as exc:  # startup failure: report, then exit
        try:
            conn.send({
                "error": f"shard {shard_index} failed to start: {exc}",
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
            })
        finally:
            conn.close()
        return
    conn.send({"ok": True, "shard": shard_index, "pid": os.getpid()})
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            response = server.handle(op, payload)
        except Exception as exc:
            response = {
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
            }
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break
        if op == "shutdown":
            break
    conn.close()


class ProcessShardClient:
    """Front-side handle to one worker process.

    Spawn-context child (no inherited locks), duplex pipe, one
    in-flight request per shard (guarded by a lock — the front
    parallelizes *across* shards, and each worker is single-threaded
    anyway). The constructor blocks until the worker reports ready, so
    a mis-configured shard fails fast instead of on first query.
    """

    def __init__(self, store_root, shard_index: int,
                 backend: Optional[str] = None,
                 cv_degradation_threshold: float = 1.5,
                 keep_versions: int = 4,
                 start_timeout: float = 60.0) -> None:
        self.shard_index = int(shard_index)
        ctx = multiprocessing.get_context("spawn")
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=worker_main,
            args=(child, str(store_root), self.shard_index, backend,
                  cv_degradation_threshold, keep_versions),
            daemon=True,
            name=f"shard-worker-{self.shard_index:02d}",
        )
        self._proc.start()
        child.close()
        self._lock = Lock()
        self._closed = False
        if not self._conn.poll(start_timeout):
            self.close()
            raise ShardWorkerError(
                f"shard {self.shard_index} worker did not start within "
                f"{start_timeout:.0f}s"
            )
        hello = self._conn.recv()
        if "error" in hello:
            self.close()
            raise ShardWorkerError(
                hello["error"],
                remote_type=hello.get("error_type", ""),
                remote_traceback=hello.get("traceback", ""),
            )
        self.pid = hello.get("pid")

    def request(self, op: str, **payload) -> Dict:
        with self._lock:
            if self._closed:
                raise ShardWorkerError(
                    f"shard {self.shard_index} client is closed"
                )
            self._conn.send((op, payload))
            try:
                response = self._conn.recv()
            except (EOFError, OSError) as exc:
                self._closed = True
                raise ShardWorkerError(
                    f"shard {self.shard_index} worker died mid-request"
                ) from exc
        if "error" in response:
            raise ShardWorkerError(
                f"shard {self.shard_index}: {response['error']}",
                remote_type=response.get("error_type", ""),
                remote_traceback=response.get("traceback", ""),
            )
        return response

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(("shutdown", {}))
                if self._conn.poll(timeout):
                    self._conn.recv()
            except (BrokenPipeError, OSError):
                pass
            finally:
                self._conn.close()
        self._proc.join(timeout)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout)

    @property
    def alive(self) -> bool:
        return not self._closed and self._proc.is_alive()


class InProcessShardClient:
    """Same protocol, no process boundary.

    Used by tests (hypothesis runs hundreds of examples — process
    spawns would dominate) and by single-process deployments that still
    want the sharded layout. Errors are wrapped into
    :class:`ShardWorkerError` exactly like the remote path, so callers
    cannot tell the difference.
    """

    def __init__(self, store_root, shard_index: int,
                 backend=None, cv_degradation_threshold: float = 1.5,
                 keep_versions: int = 4) -> None:
        self.shard_index = int(shard_index)
        self.server = ShardServer(
            store_root, shard_index, backend=backend,
            cv_degradation_threshold=cv_degradation_threshold,
            keep_versions=keep_versions,
        )
        self.pid = os.getpid()

    def request(self, op: str, **payload) -> Dict:
        try:
            return self.server.handle(op, payload)
        except ShardWorkerError:
            raise
        except Exception as exc:
            raise ShardWorkerError(
                f"shard {self.shard_index}: {exc}",
                remote_type=type(exc).__name__,
                remote_traceback=traceback.format_exc(),
            ) from exc

    def close(self, timeout: float = 0.0) -> None:
        pass

    @property
    def alive(self) -> bool:
        return True
