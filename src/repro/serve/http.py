"""HTTP/1.1 front for the warehouse on stdlib asyncio streams.

No web framework, no third-party deps: a hand-rolled request parser
(request line + headers + Content-Length body, keep-alive supported)
over :func:`asyncio.start_server`, answering JSON on four routes:

===========  =========================================================
``POST /query``    answer SQL; every response embeds an accuracy
                   contract, and the body may carry ``max_cv`` /
                   ``max_staleness`` constraints (violations → exact
                   fallback or ``412 Precondition Failed``)
``GET /samples``   live samples with served version + staleness
``GET /stats``     full store/serving statistics (plus daemon counters
                   when a maintenance daemon is attached)
``GET /healthz``   cheap liveness probe (no store I/O)
``GET /metrics``   Prometheus text exposition of the process registry
``GET /debug/traces``  recent query traces (``?limit=N``), one root
                   span per ``/query`` with child + shard-worker spans
===========  =========================================================

Observability: every ``/query`` runs under a root trace span
(propagated through ``asyncio.to_thread`` into the sync service and —
via the pipe protocol — into shard workers), and, when the server is
constructed with a :class:`~repro.obs.querylog.QueryLog`, appends one
structured JSONL record per query: sql, shape key, route, sample/
version, CV summary, cache hits, shard fan-out, outcome, latency
breakdown and trace id. That record format is what
``Workload.from_query_log`` / ``warehouse advise --query-log`` replay.

Error mapping: malformed requests and SQL errors → 400, unknown paths →
404, wrong method → 405, contract violations → 412, unexpected faults →
500, saturation/shutdown → 503. Bodies are always JSON with an
``error`` key. See ``docs/API.md`` for request/response examples.

:class:`HTTPConnection` at the bottom is the matching minimal client,
used by the test suite and ``benchmarks/bench_serve.py`` so neither
needs an HTTP library either.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs

import numpy as np

from ..engine.sql.errors import QueryExecutionError
from ..engine.sql.lexer import SqlSyntaxError
from ..engine.table import Table
from ..obs import QueryLog, default_registry, default_tracer
from ..warehouse.contracts import AccuracyContract, AccuracyContractViolation
from .service import AsyncWarehouseService, ServiceClosed, ServiceOverloaded

__all__ = ["WarehouseHTTPServer", "HTTPConnection", "request"]

_TRACER = default_tracer()
_HTTP_REQUESTS = default_registry().counter(
    "repro_http_requests_total",
    "HTTP requests served, by route and status",
    ["path", "status"],
)
_HTTP_SECONDS = default_registry().histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency in seconds",
)

#: Known routes, used as the ``path`` metric label so arbitrary client
#: paths cannot mint unbounded label values.
_ROUTES = (
    "/query", "/samples", "/stats", "/healthz", "/metrics",
    "/debug/traces",
)

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_DEFAULT_ROW_LIMIT = 1_000

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    412: "Precondition Failed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _json_default(value):
    """Make numpy scalars (and anything else odd) JSON-serializable."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return str(value)


def _dumps(payload: Dict) -> bytes:
    return json.dumps(payload, default=_json_default).encode("utf-8")


def _table_payload(table: Table, limit: int) -> Dict:
    """Answer rows as ``{columns, rows, row_count, truncated}``.

    Slices to ``limit`` rows *before* decoding so the per-request cost
    is bounded by the response size, not the answer size (negative
    limit = all rows).
    """
    names = list(table.column_names)
    total = table.num_rows
    shown = total if limit < 0 else min(limit, total)
    view = table.take(np.arange(shown)) if shown < total else table
    decoded = [view.column(n).decode() for n in names]
    rows = [
        [column[i] for column in decoded] for i in range(shown)
    ]
    return {
        "columns": names,
        "rows": rows,
        "row_count": total,
        "truncated": shown < total,
    }


class _BadRequest(Exception):
    """Internal: malformed HTTP or JSON input (mapped to 400/413)."""

    def __init__(self, message: str, status: int = 400):
        self.status = status
        super().__init__(message)


class WarehouseHTTPServer:
    """Serve an :class:`AsyncWarehouseService` over HTTP.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`. :meth:`stop` closes the listener, then drains the
    wrapped service so every admitted query finishes before the
    coroutine returns — in-flight responses are written, new
    connections are refused.
    """

    def __init__(
        self,
        service: AsyncWarehouseService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_contract_groups: int = 100,
        query_log: Optional[QueryLog] = None,
        daemon=None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_contract_groups = int(max_contract_groups)
        #: Structured JSONL log, one record per /query (None = off).
        self.query_log = query_log
        #: Attached MaintenanceDaemon whose counters ride on /stats.
        self.daemon = daemon
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()  # live connection-handler tasks
        self._busy: set = set()  # handlers mid-request (response unsent)
        self._stopping = False
        self.requests_handled = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "WarehouseHTTPServer":
        """Bind and start accepting connections; returns ``self``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block until the server is cancelled or stopped."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, grace: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight requests.

        Closes the listener, waits for the wrapped service to drain
        every admitted query, gives busy handlers up to ``grace``
        seconds to write their responses, then drops idle keep-alive
        connections. Idempotent.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        deadline = asyncio.get_running_loop().time() + grace
        while self._busy and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_requests(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown dropped this idle connection; close quietly
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass

    async def _serve_requests(self, reader, writer) -> None:
        """Keep-alive loop: one request/response at a time until EOF,
        a ``Connection: close``, or server shutdown."""
        task = asyncio.current_task()
        while True:
            try:
                parsed = await _read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                break  # client went away between requests
            except _BadRequest as exc:
                await _write_response(
                    writer, exc.status, {"error": str(exc)}, close=True
                )
                break
            if parsed is None:
                break  # clean EOF
            self._busy.add(task)
            try:
                method, path, headers, body = parsed
                t0 = time.perf_counter()
                status, payload = await self._dispatch(
                    method, path, body
                )
                route = path.split("?", 1)[0]
                _HTTP_REQUESTS.inc(
                    path=route if route in _ROUTES else "other",
                    status=str(status),
                )
                _HTTP_SECONDS.observe(time.perf_counter() - t0)
                self.requests_handled += 1
                keep = (
                    headers.get("connection", "keep-alive") != "close"
                    and not self._stopping
                )
                await _write_response(
                    writer, status, payload, close=not keep
                )
            finally:
                self._busy.discard(task)
            if not keep:
                break

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict, str]]:
        """Route one request; returns ``(status, payload)`` where the
        payload is a JSON-able dict or (for ``/metrics``) plain text."""
        path, _, query_string = path.partition("?")
        try:
            if path == "/query":
                if method != "POST":
                    return 405, {"error": "use POST /query"}
                return await self._handle_query(body)
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET /healthz"}
                return 200, self.service.health()
            if path == "/samples":
                if method != "GET":
                    return 405, {"error": "use GET /samples"}
                samples = await asyncio.to_thread(
                    self.service.service.sample_summaries
                )
                return 200, {"samples": samples}
            if path == "/stats":
                if method != "GET":
                    return 405, {"error": "use GET /stats"}
                stats = await self.service.stats()
                if self.daemon is not None:
                    stats["daemon"] = self.daemon.stats()
                if self.query_log is not None:
                    stats["query_log"] = self.query_log.stats()
                return 200, stats
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": "use GET /metrics"}
                return 200, default_registry().render()
            if path == "/debug/traces":
                if method != "GET":
                    return 405, {"error": "use GET /debug/traces"}
                params = parse_qs(query_string)
                try:
                    limit = int(params.get("limit", ["50"])[0])
                except ValueError:
                    return 400, {"error": "'limit' must be an integer"}
                return 200, {
                    "traces": _TRACER.recent_traces(limit)
                }
            return 404, {
                "error": f"no route {path!r}; try POST /query, "
                "GET /samples, GET /stats, GET /healthz, GET /metrics, "
                "GET /debug/traces"
            }
        except ServiceOverloaded as exc:
            return 503, {"error": str(exc), "retry": True}
        except ServiceClosed as exc:
            return 503, {"error": str(exc), "retry": False}
        except Exception as exc:  # pragma: no cover - last resort
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _handle_query(self, body: bytes) -> Tuple[int, Dict]:
        try:
            request_body = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"body is not valid JSON: {exc}"}
        if not isinstance(request_body, dict):
            return 400, {"error": "body must be a JSON object"}
        sql = request_body.get("sql")
        if not sql or not isinstance(sql, str):
            return 400, {"error": "body must carry a 'sql' string"}
        limit = request_body.get("limit", _DEFAULT_ROW_LIMIT)
        if isinstance(limit, bool) or not isinstance(limit, int):
            return 400, {
                "error": "'limit' must be an integer (negative = all rows)"
            }
        mode = request_body.get("mode", "auto")
        started = time.perf_counter()
        contract: Optional[AccuracyContract] = None
        # Root span of this query's trace: the contextvar travels
        # through asyncio.to_thread into the sync service (and from
        # there over the pipe into shard workers), so every child span
        # below attaches here.
        with _TRACER.trace("http.query", mode=mode) as trace:
            try:
                answer = await self.service.query(
                    sql,
                    mode=mode,
                    max_cv=request_body.get("max_cv"),
                    max_staleness=request_body.get("max_staleness"),
                    on_violation=request_body.get(
                        "on_violation", "fallback"
                    ),
                )
            except AccuracyContractViolation as exc:
                contract = exc.contract
                status, payload = 412, {
                    "error": str(exc),
                    "violations": exc.violations,
                    "contract": exc.contract.to_dict(
                        self.max_contract_groups
                    ),
                }
            except (SqlSyntaxError, QueryExecutionError, ValueError,
                    TypeError, KeyError) as exc:
                status, payload = 400, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            else:
                contract = answer.contract
                payload = _table_payload(answer.result.table, limit)
                payload["contract"] = answer.contract.to_dict(
                    self.max_contract_groups
                )
                payload["plan_cached"] = answer.result.plan_cached
                payload["elapsed_seconds"] = answer.result.elapsed_seconds
                status = 200
            trace.root.set_tag("status", status)
        if self.query_log is not None:
            self._log_query(
                sql, mode, status, payload, contract, trace,
                time.perf_counter() - started,
            )
        return status, payload

    def _log_query(
        self,
        sql: str,
        mode: str,
        status: int,
        payload: Dict,
        contract: Optional[AccuracyContract],
        trace,
        elapsed: float,
    ) -> None:
        """Append one structured record to the query log.

        The record is the advisor's input format (see
        ``docs/OBSERVABILITY.md``): routing facts come from the root
        span's tags (annotated by the session and warehouse layers),
        accuracy facts from the contract, and the latency breakdown is
        the per-phase sum of the trace's span durations.
        """
        tags = trace.root.tags
        latency: Dict[str, float] = {}
        trace_dict = trace.trace.to_dict()
        for span in trace_dict["spans"]:
            if span["span_id"] == trace_dict["spans"][0]["span_id"]:
                continue  # the root span is the total, not a phase
            if span.get("duration") is not None:
                latency[span["name"]] = (
                    latency.get(span["name"], 0.0) + span["duration"]
                )
        group_cvs = (
            [float(v) for v in contract.group_cvs]
            if contract is not None and contract.group_cvs
            else []
        )
        record = {
            "sql": sql,
            "mode": mode,
            "status": status,
            "outcome": (
                "ok" if status == 200
                else "rejected" if status == 412
                else "error"
            ),
            "elapsed_seconds": elapsed,
            "trace_id": trace.trace_id,
            "shape_key": tags.get("shape_key"),
            "plan_cache": tags.get("plan_cache"),
            "answer_cache": tags.get("answer_cache"),
            "route": tags.get("route"),
            "shard_fanout": tags.get("shard_fanout"),
            "executed": (
                contract.executed if contract is not None else None
            ),
            "sample": (
                contract.sample_name if contract is not None else None
            ),
            "sample_version": (
                contract.sample_version if contract is not None else None
            ),
            "fallback_exact": (
                contract.fallback_exact if contract is not None else None
            ),
            "predicted_cv": (
                contract.predicted_cv if contract is not None else None
            ),
            "max_group_cv": (
                contract.max_group_cv if contract is not None else None
            ),
            "cv_columns": (
                list(contract.cv_columns)
                if contract is not None and contract.cv_columns
                else None
            ),
            "staleness": (
                contract.staleness if contract is not None else None
            ),
            "window_bounds": (
                list(contract.window_bounds)
                if contract is not None
                and contract.window_bounds is not None
                else None
            ),
            "group_cv_summary": (
                {
                    "groups": len(group_cvs),
                    "min": min(group_cvs),
                    "mean": sum(group_cvs) / len(group_cvs),
                    "max": max(group_cvs),
                }
                if group_cvs
                else None
            ),
            "row_count": payload.get("row_count"),
            "latency": latency,
        }
        try:
            self.query_log.write(record)
        except OSError:
            pass  # serving beats logging; the record is best-effort


# ----------------------------------------------------------------------
# wire helpers (shared shapes between server and client)
# ----------------------------------------------------------------------
async def _read_request(reader):
    """Parse one request; None on clean EOF before any bytes.

    Raises :class:`_BadRequest` on malformed input and propagates
    ``IncompleteReadError`` when the peer disconnects mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    except asyncio.LimitOverrunError:
        raise _BadRequest("headers too large", status=413) from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _BadRequest("headers too large", status=413)
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip().lower()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(
            f"bad Content-Length {length_text!r}"
        ) from None
    if length > _MAX_BODY_BYTES:
        raise _BadRequest("body too large", status=413)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


async def _write_response(
    writer, status: int, payload: Union[Dict, str], close: bool
) -> None:
    """JSON for dict payloads; text/plain for str (``/metrics``)."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = _dumps(payload)
        content_type = "application/json"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


class HTTPConnection:
    """Tiny keep-alive JSON-over-HTTP client for the warehouse server.

    Stdlib-only counterpart to :class:`WarehouseHTTPServer`, used by
    the tests and the serving benchmark::

        conn = await HTTPConnection.open("127.0.0.1", port)
        status, payload = await conn.request(
            "POST", "/query", {"sql": "SELECT ..."}
        )
        await conn.close()

    One request at a time per connection (HTTP/1.1 without pipelining).
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "HTTPConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        """Send one request; returns ``(status, decoded JSON body)``."""
        encoded = _dumps(body) if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + encoded)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if not raw:
            return status, {}
        if "application/json" in headers.get("content-type", ""):
            return status, json.loads(raw.decode("utf-8"))
        return status, raw.decode("utf-8")  # e.g. /metrics text

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def request(
    host: str, port: int, method: str, path: str,
    body: Optional[Dict] = None,
) -> Tuple[int, Dict]:
    """One-shot convenience wrapper around :class:`HTTPConnection`."""
    conn = await HTTPConnection.open(host, port)
    try:
        return await conn.request(method, path, body)
    finally:
        await conn.close()
