"""Async serving layer: network front + background maintenance.

This package puts the warehouse on the wire without any new
dependencies:

* :class:`~repro.serve.service.AsyncWarehouseService` — asyncio wrapper
  over the thread-safe :class:`~repro.warehouse.service.WarehouseService`
  with a bounded worker pool, back-pressure, queue timeouts, and
  graceful draining;
* :class:`~repro.serve.http.WarehouseHTTPServer` — HTTP/1.1 on stdlib
  asyncio streams (``POST /query``, ``GET /samples``, ``GET /stats``,
  ``GET /healthz``); every ``/query`` response embeds an accuracy
  contract and honors ``max_cv`` / ``max_staleness`` constraints;
* :class:`~repro.serve.daemon.MaintenanceDaemon` — async task that
  watches a directory of dropped batch files and drives streaming
  refreshes (with full-rebuild escalation) that hot-swap versions in
  the live service;
* :mod:`~repro.serve.worker` — shard worker processes for the sharded
  scatter-gather warehouse: each owns one ``shard-NN/`` sub-store
  behind its own :class:`~repro.warehouse.service.WarehouseService`
  and answers partial-aggregate / refresh requests from the
  :class:`~repro.warehouse.sharded_service.ShardedWarehouseService`
  front.

See ``docs/ARCHITECTURE.md`` for where this layer sits and
``docs/API.md`` for the HTTP surface.
"""

from .daemon import BatchOutcome, MaintenanceDaemon
from .http import HTTPConnection, WarehouseHTTPServer, request
from .metrics_http import MetricsListener
from .service import AsyncWarehouseService, ServiceClosed, ServiceOverloaded
from .worker import (
    InProcessShardClient,
    ProcessShardClient,
    ShardServer,
    ShardWorkerError,
    worker_main,
)

__all__ = [
    "AsyncWarehouseService",
    "ServiceClosed",
    "ServiceOverloaded",
    "WarehouseHTTPServer",
    "HTTPConnection",
    "request",
    "MaintenanceDaemon",
    "BatchOutcome",
    "MetricsListener",
    "ShardServer",
    "ShardWorkerError",
    "ProcessShardClient",
    "InProcessShardClient",
    "worker_main",
]
