"""Background refresh daemon: a watched directory drives maintenance.

A :class:`MaintenanceDaemon` is an asyncio task that polls a directory
for dropped batch files (``.npz`` tables) and folds each into a stored
sample through :meth:`WarehouseService.refresh` — i.e. the one-pass
:meth:`StreamingCVOptSampler.resume` ingest with the existing
drift-escalation rule (a batch that pushes allocation drift past the
CV-degradation threshold triggers a full two-pass rebuild, because the
service hands maintenance the grown base table). Every applied batch
hot-swaps a new immutable version into the live service between
requests; concurrent readers keep the old version until the swap.
Under the ``mmap`` storage backend the swap itself is O(metadata):
the refreshed version is re-read as lazy memory-mapped columns, so no
row bytes move until the first query touches them and page-cache pages
for unchanged access patterns warm naturally.

File protocol
-------------
* ``<sample>__anything.npz`` refreshes sample ``<sample>``;
* any other ``*.npz`` refreshes the daemon's default ``sample`` (when
  configured), otherwise it is quarantined;
* producers should write elsewhere and ``os.replace`` into the watch
  directory; as a second line of defense a file is only picked up once
  its size and mtime are unchanged between two consecutive polls;
* applied batches move to ``<watch>/processed/``; a batch that fails is
  **retried with capped, jittered exponential backoff** (the file
  stays in the watch directory between attempts — transient faults
  like a mid-write read, a briefly held lock, or a sample whose build
  has not landed yet heal themselves) and only quarantined to
  ``<watch>/failed/`` (with a ``.error.txt`` note) once
  ``max_retries`` re-attempts are exhausted. Files the daemon cannot
  even route (no ``<sample>__`` prefix and no default sample) are
  quarantined immediately — retrying cannot fix a name. The directory
  is the queue, and it drains even when batches are bad.

The heavy lifting (``Table.load``, the refresh itself) runs in worker
threads via :func:`asyncio.to_thread`, so the daemon can share an event
loop with the HTTP front without stalling it.
"""

from __future__ import annotations

import asyncio
import pathlib
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..engine.table import Table
from ..obs import default_registry
from ..warehouse.service import WarehouseService
from .service import AsyncWarehouseService

__all__ = ["MaintenanceDaemon", "BatchOutcome"]

_REFRESH_SECONDS = default_registry().histogram(
    "repro_daemon_refresh_seconds",
    "Wall-clock duration of one batch ingest (load + refresh + swap)",
)
_BATCHES = default_registry().counter(
    "repro_daemon_batches_total",
    "Batch files handled by the maintenance daemon, by outcome",
    ["outcome"],
)
_ESCALATIONS = default_registry().counter(
    "repro_daemon_escalations_total",
    "Refreshes whose drift escalated to a full rebuild",
)
_WINDOW_ROLLS = default_registry().counter(
    "repro_daemon_window_rolls_total",
    "Batches that rolled a windowed family forward",
)
_FROZEN_ROWS = default_registry().counter(
    "repro_daemon_frozen_rows_total",
    "Late rows dropped from closed-window samples by the daemon",
)
_PENDING_RETRIES = default_registry().gauge(
    "repro_daemon_pending_retries",
    "Batch files currently queued for a backoff retry",
)

_PROCESSED_DIR = "processed"
_FAILED_DIR = "failed"
_SAMPLE_SEPARATOR = "__"


@dataclass
class BatchOutcome:
    """What happened to one dropped batch file."""

    file: str
    sample: Optional[str]
    ok: bool
    # "incremental" / "rebuild", or "windowed" when the batch rolled a
    # windowed family forward (open-window refresh, fresh windows for
    # newer rows, late rows frozen out of closed windows).
    action: Optional[str] = None
    version: Optional[str] = None
    rows: int = 0
    #: Windowed refreshes only: window starts refreshed or opened, and
    #: late rows dropped from closed-window samples.
    windows_refreshed: Optional[List[int]] = None
    windows_opened: Optional[List[int]] = None
    frozen_rows: int = 0
    error: Optional[str] = None
    elapsed_seconds: float = 0.0
    #: 1-based attempt number this outcome describes.
    attempts: int = 1
    #: True when the file was moved to ``failed/`` (no more retries).
    quarantined: bool = False
    #: Seconds until the next retry (None when ok or quarantined).
    retry_in: Optional[float] = None


@dataclass
class _RetryState:
    """Backoff bookkeeping for one failing batch file."""

    attempts: int = 0
    next_due: float = 0.0  # monotonic clock


class MaintenanceDaemon:
    """Watch a directory; refresh stored samples from dropped batches.

    Parameters
    ----------
    service:
        The warehouse to refresh — a sync :class:`WarehouseService` or
        an :class:`AsyncWarehouseService` (its wrapped sync service is
        used; refreshes are serialized by its maintenance mutex either
        way).
    watch_dir:
        Directory to poll; created (with its ``processed``/``failed``
        subdirectories) if missing.
    sample:
        Default sample for batch files without a ``<sample>__`` prefix.
    poll_interval:
        Seconds between directory scans while running.
    require_stable:
        Only ingest a file whose size/mtime matched on two consecutive
        scans (guards against half-written drops). Disable for
        single-shot catch-up runs where the producer is known quiescent.
    keep_outcomes:
        How many recent :class:`BatchOutcome` records to retain.
    max_retries:
        Re-attempts after a failed ingest before the file is
        quarantined (0 restores quarantine-on-first-failure). Files
        that cannot be routed to a sample are never retried.
    retry_initial_delay:
        Backoff before the first retry, in seconds; doubles per
        attempt.
    retry_max_delay:
        Cap on the backoff delay.
    retry_jitter:
        Relative jitter applied to each delay (0.25 = up to +25%), so a
        burst of bad files does not retry in lockstep.

    Single-loop object like the async service: drive it from one event
    loop via :meth:`start`/:meth:`stop` (or call :meth:`poll` directly).
    """

    def __init__(
        self,
        service,
        watch_dir,
        sample: Optional[str] = None,
        poll_interval: float = 1.0,
        require_stable: bool = True,
        keep_outcomes: int = 200,
        max_retries: int = 3,
        retry_initial_delay: float = 2.0,
        retry_max_delay: float = 60.0,
        retry_jitter: float = 0.25,
    ) -> None:
        # Imported lazily: sharded_service pulls in serve.worker, and a
        # top-level import here would close that cycle during package
        # initialization.
        from ..warehouse.sharded_service import ShardedWarehouseService

        if isinstance(service, AsyncWarehouseService):
            service = service.service
        if not isinstance(
            service, (WarehouseService, ShardedWarehouseService)
        ):
            raise TypeError(
                "service must be a WarehouseService, "
                "ShardedWarehouseService or AsyncWarehouseService"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_initial_delay < 0 or retry_max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if retry_jitter < 0:
            raise ValueError("retry_jitter must be >= 0")
        self.service = service
        self.watch_dir = pathlib.Path(watch_dir)
        self.sample = sample
        self.poll_interval = float(poll_interval)
        self.require_stable = bool(require_stable)
        self.max_retries = int(max_retries)
        self.retry_initial_delay = float(retry_initial_delay)
        self.retry_max_delay = float(retry_max_delay)
        self.retry_jitter = float(retry_jitter)
        self.watch_dir.mkdir(parents=True, exist_ok=True)
        (self.watch_dir / _PROCESSED_DIR).mkdir(exist_ok=True)
        (self.watch_dir / _FAILED_DIR).mkdir(exist_ok=True)
        self._seen: Dict[str, Tuple[int, int]] = {}  # name -> (size, mtime)
        self._retries: Dict[str, _RetryState] = {}  # name -> backoff state
        self._jitter_rng = random.Random()
        self._task: Optional[asyncio.Task] = None
        self._stop = asyncio.Event()
        self.outcomes: Deque[BatchOutcome] = deque(maxlen=keep_outcomes)
        self.batches_applied = 0
        self.batches_failed = 0
        self.batches_retried = 0
        self.polls = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> asyncio.Task:
        """Spawn the polling loop on the running event loop."""
        if self._task is not None and not self._task.done():
            raise RuntimeError("daemon already running")
        self._stop.clear()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="warehouse-maintenance-daemon"
        )
        return self._task

    async def stop(self) -> None:
        """Finish the in-progress poll (if any) and stop. Idempotent."""
        self._stop.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def _run(self) -> None:
        while not self._stop.is_set():
            await self.poll()
            try:
                await asyncio.wait_for(
                    self._stop.wait(), self.poll_interval
                )
            except asyncio.TimeoutError:
                pass

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    async def poll(self) -> List[BatchOutcome]:
        """Scan once and ingest every ready batch; returns outcomes.

        With ``require_stable`` a new file is recorded on the first
        scan and ingested on the next one whose size/mtime still match,
        so a dropped batch needs two polls to land. A file awaiting a
        retry is skipped until its backoff delay has elapsed (and is
        then re-attempted without a fresh stability round — it already
        sat through one).
        """
        self.polls += 1
        now = time.monotonic()
        snapshot: Dict[str, Tuple[int, int]] = {}
        ready = []
        for path in sorted(self.watch_dir.glob("*.npz")):
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue  # raced with another consumer
            fingerprint = (stat.st_size, stat.st_mtime_ns)
            snapshot[path.name] = fingerprint
            retry = self._retries.get(path.name)
            if retry is not None:
                if now >= retry.next_due:
                    ready.append(path)
                continue  # backing off; leave the file queued
            if (
                not self.require_stable
                or self._seen.get(path.name) == fingerprint
            ):
                ready.append(path)
        # A file that vanished (operator cleanup, another consumer)
        # takes its backoff state with it — a later drop under the same
        # name is a fresh batch, not attempt N+1, and must go through
        # the normal stability round.
        for name in list(self._retries):
            if name not in snapshot:
                del self._retries[name]
        outcomes = []
        for path in ready:
            outcome = await self._ingest(path)
            outcomes.append(outcome)
            self.outcomes.append(outcome)
            if outcome.ok or outcome.quarantined:
                snapshot.pop(path.name, None)
                self._retries.pop(path.name, None)
        self._seen = snapshot
        _PENDING_RETRIES.set(len(self._retries))
        return outcomes

    async def _ingest(self, path: pathlib.Path) -> BatchOutcome:
        sample = self._route(path)
        started = time.perf_counter()
        attempts = self._retries.get(path.name, _RetryState()).attempts + 1
        if sample is None:
            # Unroutable: no amount of retrying fixes a file name.
            return self._quarantine(
                path,
                sample,
                "no '<sample>__' prefix and the daemon has no default "
                "sample",
                started,
                attempts,
            )
        try:
            batch = await asyncio.to_thread(Table.load, path)
            report = await asyncio.to_thread(
                self.service.refresh, sample, batch
            )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            if attempts > self.max_retries:
                return self._quarantine(
                    path, sample, error, started, attempts
                )
            return self._schedule_retry(
                path, sample, error, started, attempts
            )
        path.replace(self.watch_dir / _PROCESSED_DIR / path.name)
        self.batches_applied += 1
        elapsed = time.perf_counter() - started
        _BATCHES.inc(outcome="applied")
        _REFRESH_SECONDS.observe(elapsed)
        if report.action == "rebuild":
            _ESCALATIONS.inc()
        if report.action == "windowed":
            _WINDOW_ROLLS.inc()
            if report.frozen_rows:
                _FROZEN_ROWS.inc(report.frozen_rows)
        return BatchOutcome(
            file=path.name,
            sample=sample,
            ok=True,
            action=report.action,
            version=report.version,
            rows=report.rows_ingested,
            windows_refreshed=getattr(report, "refreshed", None),
            windows_opened=getattr(report, "opened", None),
            frozen_rows=getattr(report, "frozen_rows", 0),
            elapsed_seconds=elapsed,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Counters + the most recent outcome, JSON-ready."""
        last = self.outcomes[-1] if self.outcomes else None
        now = time.monotonic()
        return {
            "watch_dir": str(self.watch_dir),
            "polls": self.polls,
            "batches_applied": self.batches_applied,
            "batches_failed": self.batches_failed,
            "batches_retried": self.batches_retried,
            "pending_retries": {
                name: {
                    "attempts": state.attempts,
                    "due_in_seconds": max(0.0, state.next_due - now),
                }
                for name, state in self._retries.items()
            },
            "running": self._task is not None and not self._task.done(),
            "last_outcome": vars(last) if last else None,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _route(self, path: pathlib.Path) -> Optional[str]:
        stem = path.name[: -len(".npz")]
        if _SAMPLE_SEPARATOR in stem:
            prefix = stem.split(_SAMPLE_SEPARATOR, 1)[0]
            if prefix:
                return prefix
        return self.sample

    def _backoff_delay(self, attempts: int) -> float:
        """Capped exponential backoff with relative jitter."""
        delay = min(
            self.retry_initial_delay * (2.0 ** max(attempts - 1, 0)),
            self.retry_max_delay,
        )
        if self.retry_jitter:
            delay *= 1.0 + self.retry_jitter * self._jitter_rng.random()
        return delay

    def _schedule_retry(
        self,
        path: pathlib.Path,
        sample: Optional[str],
        error: str,
        started: float,
        attempts: int,
    ) -> BatchOutcome:
        delay = self._backoff_delay(attempts)
        self._retries[path.name] = _RetryState(
            attempts=attempts, next_due=time.monotonic() + delay
        )
        self.batches_retried += 1
        _BATCHES.inc(outcome="retried")
        _PENDING_RETRIES.set(len(self._retries))
        return BatchOutcome(
            file=path.name,
            sample=sample,
            ok=False,
            error=error,
            elapsed_seconds=time.perf_counter() - started,
            attempts=attempts,
            quarantined=False,
            retry_in=delay,
        )

    def _quarantine(
        self,
        path: pathlib.Path,
        sample: Optional[str],
        error: str,
        started: float,
        attempts: int = 1,
    ) -> BatchOutcome:
        failed = self.watch_dir / _FAILED_DIR / path.name
        try:
            path.replace(failed)
            failed.with_suffix(".error.txt").write_text(
                error + f" (after {attempts} attempt(s))\n"
            )
        except OSError:
            pass  # the outcome record still carries the error
        self._retries.pop(path.name, None)
        self.batches_failed += 1
        _BATCHES.inc(outcome="quarantined")
        _PENDING_RETRIES.set(len(self._retries))
        return BatchOutcome(
            file=path.name,
            sample=sample,
            ok=False,
            error=error,
            elapsed_seconds=time.perf_counter() - started,
            attempts=attempts,
            quarantined=True,
        )
