"""Tiny ``/metrics``-only HTTP listener for standalone processes.

The serving front exposes ``GET /metrics`` through the asyncio HTTP
server, but a standalone ``warehouse daemon`` process has no server at
all — its ``repro_daemon_*`` series previously lived in an
unscrapeable in-process registry. :class:`MetricsListener` closes that
gap with a stdlib :class:`~http.server.ThreadingHTTPServer` on a
daemon thread: one route, Prometheus text format, no dependencies, no
interference with the asyncio event loop.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import default_registry

__all__ = ["MetricsListener"]


class MetricsListener:
    """Serve one registry's metrics on ``GET /metrics``.

    Binds at construction (so ``port=0`` callers can read the chosen
    port before :meth:`start`), serves from a daemon thread, and
    answers 404 for every other path — this is a scrape endpoint, not
    an API surface.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry=None) -> None:
        self.registry = registry if registry is not None else default_registry()
        listener = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                body = listener.registry.render().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass  # scrapes every few seconds; keep stdout quiet

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsListener":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-listener",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            # shutdown() blocks on the serve_forever loop acknowledging,
            # so it must only run when the loop actually started.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsListener":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
