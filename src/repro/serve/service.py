"""Asyncio front for the warehouse: bounded worker pool + back-pressure.

:class:`AsyncWarehouseService` makes the thread-safe (but synchronous)
:class:`~repro.warehouse.service.WarehouseService` usable from an event
loop. Queries run in worker threads via :func:`asyncio.to_thread`; a
semaphore caps how many execute at once, a pending bound rejects work
outright when the queue is full (fail fast beats unbounded latency),
and a queue timeout rejects requests that waited too long for a slot.
Writes (build/refresh/register) also run in threads — the sync layer
already serializes them behind its maintenance mutex.

Shutdown is graceful: :meth:`close` stops admitting new requests and
waits for every admitted one to finish, so an HTTP front can drain
in-flight answers before the process exits.

All coordination state (counters, semaphore, events) is touched only on
the event-loop thread — the GIL-crossing work happens inside
``to_thread`` where the sync service's own locks take over.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from ..engine.table import Table
from ..obs import default_registry
from ..warehouse.contracts import AccuracyContractViolation, ContractedResult
from ..warehouse.maintenance import BuildReport, RefreshReport
from ..warehouse.service import WarehouseService

__all__ = [
    "AsyncWarehouseService",
    "ServiceClosed",
    "ServiceOverloaded",
]

_REJECTED = default_registry().counter(
    "repro_serve_rejected_total",
    "Requests rejected by the async front, by reason",
    ["reason"],
)
_INFLIGHT = default_registry().gauge(
    "repro_serve_inflight",
    "Queries executing in worker threads right now",
)


class ServiceOverloaded(RuntimeError):
    """Raised when the pending-request bound or queue timeout trips.

    The HTTP layer maps this to 503 Service Unavailable; callers should
    back off and retry.
    """


class ServiceClosed(RuntimeError):
    """Raised for requests arriving after :meth:`close` began."""


class AsyncWarehouseService:
    """Bounded asyncio wrapper around a :class:`WarehouseService`.

    Parameters
    ----------
    service:
        The synchronous :class:`WarehouseService` to front (construct
        it yourself — ownership of tables and stores stays explicit).
    max_concurrency:
        Queries executing in worker threads at once.
    max_pending:
        Requests allowed to *wait* for a slot beyond the executing
        ones; the next request is rejected immediately with
        :class:`ServiceOverloaded`.
    queue_timeout:
        Seconds a request may wait for a slot before it is rejected
        with :class:`ServiceOverloaded`.

    Not thread-safe: call it from one event loop. (The wrapped sync
    service remains fully thread-safe and may be shared elsewhere.)
    """

    def __init__(
        self,
        service: WarehouseService,
        max_concurrency: int = 8,
        max_pending: int = 64,
        queue_timeout: float = 30.0,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.service = service
        self.max_concurrency = int(max_concurrency)
        self.max_pending = int(max_pending)
        self.queue_timeout = float(queue_timeout)
        self._sem = asyncio.Semaphore(self.max_concurrency)
        self._pending = 0  # admitted requests: waiting + executing
        self._inflight = 0  # executing right now
        self._closing = False
        self._drained = asyncio.Event()
        self._drained.set()
        # counters surfaced in stats()
        self.queries = 0
        self.rejected_overload = 0
        self.rejected_contract = 0
        self.peak_inflight = 0

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def query(
        self,
        sql: str,
        mode: str = "auto",
        max_cv: Optional[float] = None,
        max_staleness: Optional[float] = None,
        on_violation: str = "fallback",
    ) -> ContractedResult:
        """Answer ``sql`` with an accuracy contract, off the event loop.

        Same semantics (and exceptions) as
        :meth:`WarehouseService.query_with_contract`, plus
        :class:`ServiceOverloaded` when the pool is saturated and
        :class:`ServiceClosed` during shutdown.
        """
        self._admit()
        try:
            try:
                await asyncio.wait_for(
                    self._sem.acquire(), self.queue_timeout
                )
            except asyncio.TimeoutError:
                self.rejected_overload += 1
                _REJECTED.inc(reason="queue_timeout")
                raise ServiceOverloaded(
                    f"no worker slot freed within {self.queue_timeout}s"
                ) from None
            self._inflight += 1
            _INFLIGHT.set(self._inflight)
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            try:
                answer = await asyncio.to_thread(
                    self.service.query_with_contract,
                    sql,
                    mode,
                    max_cv,
                    max_staleness,
                    on_violation,
                )
            except AccuracyContractViolation:
                self.rejected_contract += 1
                _REJECTED.inc(reason="contract")
                raise
            finally:
                self._inflight -= 1
                _INFLIGHT.set(self._inflight)
                self._sem.release()
            self.queries += 1
            return answer
        finally:
            self._release()

    # ------------------------------------------------------------------
    # maintenance (threaded pass-throughs)
    # ------------------------------------------------------------------
    async def refresh(
        self, name: str, batch: Table, seed: int = 0
    ) -> RefreshReport:
        """Fold ``batch`` into sample ``name`` and hot-swap the new
        version live (runs in a worker thread; serialized with other
        writers by the sync service)."""
        return await asyncio.to_thread(
            self.service.refresh, name, batch, seed
        )

    async def build(self, *args, **kwargs) -> BuildReport:
        """Threaded :meth:`WarehouseService.build`."""
        return await asyncio.to_thread(
            self.service.build, *args, **kwargs
        )

    async def register_table(self, name: str, table: Table) -> None:
        """Threaded :meth:`WarehouseService.register_table`."""
        await asyncio.to_thread(self.service.register_table, name, table)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    async def stats(self) -> Dict:
        """Sync-service stats plus the async pool's counters."""
        stats = await asyncio.to_thread(self.service.stats)
        stats["serving"] = self.pool_stats()
        return stats

    def pool_stats(self) -> Dict:
        """Pool counters only (no store I/O, safe on the loop)."""
        return {
            "max_concurrency": self.max_concurrency,
            "max_pending": self.max_pending,
            "queue_timeout": self.queue_timeout,
            "inflight": self._inflight,
            "pending": self._pending,
            "peak_inflight": self.peak_inflight,
            "queries": self.queries,
            "rejected_overload": self.rejected_overload,
            "rejected_contract": self.rejected_contract,
            "closing": self._closing,
        }

    def health(self) -> Dict:
        """Sync health snapshot plus pool liveness (cheap)."""
        health = self.service.health()
        health["serving"] = {
            "inflight": self._inflight,
            "pending": self._pending,
            "closing": self._closing,
        }
        return health

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closing(self) -> bool:
        return self._closing

    async def close(self) -> None:
        """Stop admitting requests and wait for admitted ones to drain.

        Idempotent. Requests arriving after this starts fail with
        :class:`ServiceClosed`; every request admitted before it keeps
        its worker slot and completes normally.
        """
        self._closing = True
        await self._drained.wait()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        if self._closing:
            raise ServiceClosed("service is shutting down")
        if self._pending >= self.max_concurrency + self.max_pending:
            self.rejected_overload += 1
            _REJECTED.inc(reason="overload")
            raise ServiceOverloaded(
                f"{self._pending} requests already pending "
                f"(max {self.max_concurrency + self.max_pending})"
            )
        self._pending += 1
        self._drained.clear()

    def _release(self) -> None:
        self._pending -= 1
        if self._pending == 0:
            self._drained.set()
